//! The fleet runtime: N per-node serving drivers behind one front door.
//!
//! A [`Fleet`] composes independent per-node
//! [`Driver`]s and advances them in lockstep
//! virtual time. Arrivals enter through the fleet, not the nodes: each
//! query is held until the fleet clock reaches its arrival, every node is
//! advanced to that instant, and the router then picks a node using the
//! *live* load views — so routing decisions see exactly the state a real
//! front-end load balancer would observe at that moment. An admission
//! controller sits behind the router and may shed or defer the query
//! instead of injecting it.
//!
//! Determinism: nodes are independent simulations, arrival processing is
//! totally ordered by `(arrival time, submission order)`, and every
//! built-in router/controller is deterministic for a fixed configuration
//! — so a fleet run is a pure function of (models, node specs, router
//! kind, admission kind, workload, seed). The
//! [`StepMode`] — sequential or work-stealing parallel
//! node advancement — is deliberately *not* part of that tuple: both
//! modes produce bit-identical results, because routing stays on the
//! coordinator thread and node advancement commutes across nodes.
//!
//! **Elasticity.** The roster is dynamic: nodes join
//! ([`Fleet::add_node`]), drain gracefully ([`Fleet::drain_node`]), or
//! crash-stop ([`Fleet::kill_node`]) at exact virtual instants; a
//! [`FailurePlan`] injects deterministic crash/stall/drain schedules;
//! and an attached [`ScalePolicy`] lets an [`Autoscaler`] grow and
//! shrink capacity with a modeled provisioning delay. All control
//! actions fire on one deterministic timeline interleaved with routing
//! (failures, then stall recoveries, then provisioned joins, then the
//! autoscaler tick, at each control instant; queries due *at* a control
//! instant route after it), and departed nodes keep their roster slot —
//! masked out of the index, never compacted — so node indices stay
//! stable and elastic runs keep the full bit-determinism contract.
//!
//! Neither are the coordinator's two performance knobs. The
//! [`RoutingMode`] selects between the O(log n) incrementally maintained
//! [`LoadIndex`] and the O(n) reference scan — bit-identical by contract
//! (same rank keys, ties to the lowest node index, identical sampler
//! draw sequences), differing only in the
//! [`CoordinatorStats`] op counts. The micro-batching
//! epsilon ([`Fleet::set_batch_epsilon`]) absorbs routing instants whose
//! inter-arrival gap is below it into an inline coordinator advance —
//! the same `run_until` calls on another thread — saving stepper round
//! trips without touching the simulation.

use std::cmp::{Ordering, Reverse};
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

use veltair_compiler::CompiledModel;
use veltair_sched::runtime::Driver;
use veltair_sched::{QuerySpec, WorkloadSpec};
use veltair_sim::SimTime;
use veltair_telemetry::{Collector, TelemetrySnapshot, TraceConfig, TraceEventKind, TraceLog};

use crate::admission::{AdmissionController, AdmissionDecision};
use crate::failure::{FailureEvent, FailureKind, FailurePlan};
use crate::index::{LoadIndex, RoutingMode};
use crate::node::{NodeLoad, NodeSpec, NodeState};
use crate::parallel::{StepMode, StepperPool};
use crate::report::{merge_reports, CoordinatorStats, FleetReport};
use crate::router::{IndexSupport, Router};
use crate::scaling::{Autoscaler, ScaleDecision, ScalePolicy};

/// Why a fleet could not be built or a query could not be submitted.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// The fleet was configured with no nodes.
    NoNodes,
    /// The fleet was configured with an empty model registry.
    NoModels,
    /// A query or workload stream referenced an unregistered model.
    UnknownModel {
        /// The model name that failed to resolve.
        model: String,
    },
    /// A submitted query's arrival time was NaN or infinite.
    NonFiniteArrival {
        /// The rejected arrival time, seconds.
        arrival_s: f64,
    },
    /// [`Fleet::run_for`] was asked to advance by a non-positive or
    /// non-finite duration. Silently accepting these either rewinds the
    /// fleet clock (negative), spins forever (NaN comparisons), or jumps
    /// to infinity — all three are caller bugs worth surfacing.
    InvalidDuration {
        /// The rejected duration, seconds.
        dt_s: f64,
    },
    /// [`Fleet::with_node_registries`] was handed a registry list whose
    /// length does not match the node list.
    RegistryMismatch {
        /// Number of nodes configured.
        nodes: usize,
        /// Number of per-node registries supplied.
        registries: usize,
    },
    /// A node-lifecycle call ([`Fleet::drain_node`], [`Fleet::kill_node`])
    /// referenced a node index outside the roster.
    UnknownNode {
        /// The out-of-range node index.
        node: usize,
    },
    /// A drain or kill would leave the fleet with zero routable nodes. A
    /// front door with nowhere to route is a configuration error, not a
    /// simulation state, so direct lifecycle calls refuse it (scheduled
    /// [`FailurePlan`] events that would do the same are silently
    /// skipped instead — a plan is best-effort by design).
    FleetEmpty,
    /// An autoscaler or scale-policy parameter was outside its valid
    /// range (see `AutoscalerConfig::try_new` and
    /// [`ScalePolicy::try_new`]).
    InvalidScalePolicy {
        /// Which parameter was rejected.
        field: &'static str,
        /// The rejected value (integer fields are reported as `f64`).
        value: f64,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::NoNodes => write!(f, "a fleet needs at least one node"),
            ClusterError::NoModels => write!(f, "a fleet needs at least one compiled model"),
            ClusterError::UnknownModel { model } => {
                write!(f, "model {model} is not in the fleet's registry")
            }
            ClusterError::NonFiniteArrival { arrival_s } => {
                write!(f, "arrival times must be finite, got {arrival_s}")
            }
            ClusterError::InvalidDuration { dt_s } => {
                write!(f, "run durations must be positive and finite, got {dt_s}")
            }
            ClusterError::RegistryMismatch { nodes, registries } => {
                write!(
                    f,
                    "per-node registries must match the node list: {nodes} nodes, \
                     {registries} registries"
                )
            }
            ClusterError::UnknownNode { node } => {
                write!(f, "node {node} is not in the fleet roster")
            }
            ClusterError::FleetEmpty => {
                write!(
                    f,
                    "the operation would leave the fleet with zero routable nodes"
                )
            }
            ClusterError::InvalidScalePolicy { field, value } => {
                write!(f, "scale policy parameter {field} is out of range: {value}")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

/// Fleet-imposed ceiling on deferrals of a single query, applied on top
/// of whatever the admission controller decides. A controller that keeps
/// returning `Defer` regardless of the `attempts` counter (a buggy or
/// adversarial implementation of the public trait) would otherwise spin
/// [`Fleet::run_to_completion`] forever; at the cap the query is shed.
/// Public so admission-invariant property tests can pin the bound.
pub const DEFER_HARD_CAP: u32 = 32;

/// A query waiting at the fleet front door for its routing instant.
#[derive(Debug, Clone, PartialEq, Eq)]
struct PendingQuery {
    /// When the query is next offered to the router: the submitted
    /// arrival time, pushed later by each admission deferral.
    due: SimTime,
    /// The originally submitted arrival time. Latency accounting runs
    /// from here, so deferral hold time counts against the SLO.
    arrival: SimTime,
    /// Tie-break: fleet submission order, so equal-time arrivals are
    /// processed deterministically.
    seq: u64,
    /// Index into the fleet's model registry.
    model: usize,
    /// Deferral count so far.
    attempts: u32,
    /// The query's fleet-wide trace identity: the submission sequence
    /// number of its *original* front-door entry, preserved through
    /// deferrals and drain/kill re-routes (which re-ticket `seq` but
    /// keep the trace id, so one lifecycle chain stays one span).
    trace: u64,
}

impl Ord for PendingQuery {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.due, other.seq).cmp(&(self.due, self.seq))
    }
}

impl PartialOrd for PendingQuery {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A point-in-time view of one fleet node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSnapshot {
    /// The node's display name.
    pub name: String,
    /// The node's live load view (what routers see).
    pub load: NodeLoad,
    /// Queries routed into this node so far.
    pub routed: u64,
    /// Queries this node has completed so far.
    pub completed: usize,
    /// The node's lifecycle state (see [`NodeState`]).
    pub state: NodeState,
}

/// A point-in-time view of a live fleet, from [`Fleet::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSnapshot {
    /// Fleet clock, seconds.
    pub now_s: f64,
    /// Queries submitted to the fleet so far (client submissions only;
    /// re-routes of orphaned queries are counted in `rerouted`, not
    /// here).
    pub submitted: u64,
    /// Front-door re-entries of queries orphaned by a drain or kill.
    pub rerouted: u64,
    /// Queries completed across all nodes.
    pub completed: usize,
    /// Queries still waiting at the front door (arrival in the future or
    /// held by a deferral).
    pub front_door: usize,
    /// Queries refused by admission control so far.
    pub shed: u64,
    /// Deferral events so far.
    pub deferrals: u64,
    /// Per-node views, in fleet node order.
    pub nodes: Vec<NodeSnapshot>,
    /// The pooled fleet-wide report over queries completed so far.
    pub report: veltair_sched::ServingReport,
    /// Coordinator work counters so far (see [`CoordinatorStats`]).
    pub coordinator: CoordinatorStats,
    /// The metrics registry as of this snapshot, when telemetry is
    /// enabled ([`Fleet::enable_telemetry`]). Node-side figures
    /// (histograms, the violation table) are fresh as of the last
    /// coordinator pull point; coordinator counters are exact.
    pub telemetry: Option<TelemetrySnapshot>,
}

impl FleetSnapshot {
    /// Nodes currently in the given lifecycle state.
    fn count_state(&self, state: NodeState) -> usize {
        self.nodes.iter().filter(|n| n.state == state).count()
    }

    /// Routable, serving nodes.
    #[must_use]
    pub fn live_nodes(&self) -> usize {
        self.count_state(NodeState::Live)
    }

    /// Temporarily unreachable nodes awaiting recovery.
    #[must_use]
    pub fn stalled_nodes(&self) -> usize {
        self.count_state(NodeState::Stalled)
    }

    /// Nodes finishing in-flight work on their way out.
    #[must_use]
    pub fn draining_nodes(&self) -> usize {
        self.count_state(NodeState::Draining)
    }

    /// Nodes that have left the fleet (drained dry or crash-killed).
    #[must_use]
    pub fn dead_nodes(&self) -> usize {
        self.count_state(NodeState::Dead)
    }
}

/// Builds the live load view of one node — the single-node equivalent of
/// the batch the scan path materializes. Reading `pressure` costs a
/// monitor pass over the node's running units, so it is gated on
/// `want_pressure`.
fn load_of(driver: &Driver<'_>, node: usize, want_pressure: bool) -> NodeLoad {
    NodeLoad {
        node,
        outstanding: driver.outstanding(),
        queued: driver.queued(),
        in_flight: driver.in_flight(),
        busy_cores: driver.busy_cores(),
        total_cores: driver.total_cores(),
        occupancy: driver.occupancy(),
        pressure: if want_pressure {
            driver.pressure()
        } else {
            0.0
        },
    }
}

/// The autoscaling attachment: the policy, its built scaler, and the
/// tick/provisioning bookkeeping (see [`ScalePolicy`]).
struct ScaleState {
    policy: ScalePolicy,
    scaler: Box<dyn Autoscaler>,
    /// Next autoscaler consultation instant.
    next_tick: SimTime,
    /// Nodes provisioned so far (names the next clone `template-{n}`).
    spawned: u64,
}

/// N per-node serving drivers composed behind a router and an admission
/// controller, advancing in lockstep virtual time.
pub struct Fleet<'a> {
    models: &'a [CompiledModel],
    names: Vec<String>,
    drivers: Vec<Driver<'a>>,
    router: Box<dyn Router>,
    admission: Box<dyn AdmissionController>,
    pending: std::collections::BinaryHeap<PendingQuery>,
    now: SimTime,
    next_seq: u64,
    /// Client submissions (decoupled from `next_seq`, which also tickets
    /// re-routes of orphaned queries).
    submitted: u64,
    /// Front-door re-entries of queries orphaned by a drain or kill.
    rerouted: u64,
    routed: Vec<u64>,
    shed: u64,
    shed_per_model: BTreeMap<String, u64>,
    deferrals: u64,
    step_mode: StepMode,
    /// Lazily built when the mode switches to parallel; dropped (workers
    /// joined) when it switches back.
    pool: Option<StepperPool>,
    /// Whether the active router takes the O(log n) indexed decision
    /// path, the legacy scan, or neither (round-robin). Captured from
    /// [`Router::index_support`] at construction.
    support: IndexSupport,
    /// Decision-path selector for index-capable routers (see
    /// [`RoutingMode`]); ignored by [`IndexSupport::Scan`] routers.
    routing: RoutingMode,
    /// Micro-batching epsilon, seconds: a routing instant whose gap from
    /// the fleet clock is below this advances inline on the coordinator
    /// instead of paying a stepper round trip. `0.0` disables batching.
    batch_eps_s: f64,
    /// The incrementally maintained rank index (see [`LoadIndex`]).
    /// Kept fresh for `IndexSupport::Indexed` routers in *both* routing
    /// modes, so mode switches mid-run are safe and `index_updates` is
    /// mode-independent.
    index: LoadIndex,
    /// Last [`Driver::version`] folded into the index, per node.
    /// Initialized to a sentinel that matches no real version so the
    /// first refresh keys every node.
    node_version: Vec<u64>,
    /// Scratch buffer for the scan path's load batch, reused across
    /// routing instants so the hot path allocates nothing.
    scratch_loads: Vec<NodeLoad>,
    /// Coordinator work counters for the run so far.
    stats: CoordinatorStats,
    /// Per-node lifecycle state, parallel to `drivers`. Departed nodes
    /// keep their slot (see [`NodeState`]).
    node_state: Vec<NodeState>,
    /// Count of `Draining` nodes, gating the idle-promotion sweep so
    /// churn-free runs pay nothing for it.
    draining_count: usize,
    /// The attached failure schedule, stably sorted by instant, walked by
    /// `failure_cursor`.
    failure_events: Vec<FailureEvent>,
    failure_cursor: usize,
    /// Scheduled stall recoveries, `(instant, node)`, earliest first.
    stalls: BinaryHeap<Reverse<(SimTime, usize)>>,
    /// Provisioned nodes awaiting their join instant, in join order
    /// (instants are monotone: every join is `decision + delay` with one
    /// policy-fixed delay).
    pending_joins: VecDeque<(SimTime, NodeSpec)>,
    /// The autoscaling attachment, if any.
    scale: Option<ScaleState>,
    /// The flight recorder, when enabled: merges coordinator lifecycle
    /// events with per-node sink pulls and keeps the metrics registry.
    /// `None` (the default) keeps the hot path telemetry-free — every
    /// emission site is behind one `Option` branch.
    telemetry: Option<Collector>,
    /// Collector track id per roster slot, parallel to `drivers`.
    node_track: Vec<u32>,
    /// Per-node `driver-local query index -> fleet trace id` tables,
    /// parallel to `drivers`: grown at each admission, consulted when a
    /// node's sink is absorbed (its events carry local indices) and when
    /// a drain/kill orphan re-enters the front door.
    trace_maps: Vec<Vec<u64>>,
    /// Scratch buffer for node sink pulls, reused so the pull points
    /// allocate nothing in steady state.
    trace_scratch: Vec<(f64, TraceEventKind)>,
}

impl std::fmt::Debug for Fleet<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("now", &self.now)
            .field("nodes", &self.names)
            .field("router", &self.router.name())
            .field("admission", &self.admission.name())
            .field("step_mode", &self.step_mode)
            .field("front_door", &self.pending.len())
            .finish_non_exhaustive()
    }
}

impl<'a> Fleet<'a> {
    /// Builds a fleet over a shared compiled-model registry: every node
    /// serves the same artifacts, typically compiled against the flagship
    /// machine.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::NoNodes`] if `specs` is empty and
    /// [`ClusterError::NoModels`] if `models` is.
    pub fn new(
        models: &'a [CompiledModel],
        specs: &[NodeSpec],
        router: Box<dyn Router>,
        admission: Box<dyn AdmissionController>,
    ) -> Result<Self, ClusterError> {
        let node_models = vec![models; specs.len()];
        Self::with_node_registries(models, node_models, specs, router, admission)
    }

    /// Builds a fleet whose nodes serve from *per-node* compiled
    /// registries — the heterogeneous-hardware path: each node runs code
    /// compiled for its own machine (see
    /// `veltair_compiler::CompilerService`), while `catalog` is the
    /// fleet-level model list the front door validates submissions
    /// against and shows to the router (model identity — name, SLO,
    /// class — is machine-independent, so any registry's copy serves).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::NoNodes`] / [`ClusterError::NoModels`] for
    /// empty inputs, [`ClusterError::RegistryMismatch`] when
    /// `node_models` and `specs` differ in length, and
    /// [`ClusterError::UnknownModel`] when some node's registry is
    /// missing a catalog model (every node must be able to serve every
    /// model the front door accepts).
    pub fn with_node_registries(
        catalog: &'a [CompiledModel],
        node_models: Vec<&'a [CompiledModel]>,
        specs: &[NodeSpec],
        router: Box<dyn Router>,
        admission: Box<dyn AdmissionController>,
    ) -> Result<Self, ClusterError> {
        if specs.is_empty() {
            return Err(ClusterError::NoNodes);
        }
        if catalog.is_empty() {
            return Err(ClusterError::NoModels);
        }
        if node_models.len() != specs.len() {
            return Err(ClusterError::RegistryMismatch {
                nodes: specs.len(),
                registries: node_models.len(),
            });
        }
        for registry in &node_models {
            if let Some(missing) = catalog
                .iter()
                .find(|m| !registry.iter().any(|r| r.name == m.name))
            {
                return Err(ClusterError::UnknownModel {
                    model: missing.name.clone(),
                });
            }
        }
        let drivers: Vec<Driver<'a>> = node_models
            .iter()
            .zip(specs)
            .map(|(models, s)| Driver::open(models, s.sim_config()))
            .collect();
        let support = router.index_support();
        let index = LoadIndex::new(
            drivers
                .iter()
                .map(|d| u64::from(d.total_cores()).max(1))
                .collect(),
        );
        Ok(Self {
            models: catalog,
            names: specs.iter().map(|s| s.name.clone()).collect(),
            routed: vec![0; drivers.len()],
            node_version: vec![u64::MAX; drivers.len()],
            node_state: vec![NodeState::Live; drivers.len()],
            drivers,
            router,
            admission,
            pending: std::collections::BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            submitted: 0,
            rerouted: 0,
            shed: 0,
            shed_per_model: BTreeMap::new(),
            deferrals: 0,
            step_mode: StepMode::Sequential,
            pool: None,
            support,
            routing: RoutingMode::default(),
            batch_eps_s: 0.0,
            index,
            scratch_loads: Vec::new(),
            stats: CoordinatorStats::default(),
            draining_count: 0,
            failure_events: Vec::new(),
            failure_cursor: 0,
            stalls: BinaryHeap::new(),
            pending_joins: VecDeque::new(),
            scale: None,
            telemetry: None,
            node_track: Vec::new(),
            trace_maps: Vec::new(),
            trace_scratch: Vec::new(),
        })
    }

    /// Sets the node-advancement mode at construction time:
    /// `Fleet::new(..)?.with_step_mode(StepMode::Parallel { threads: 8 })`.
    #[must_use]
    pub fn with_step_mode(mut self, mode: StepMode) -> Self {
        self.set_step_mode(mode);
        self
    }

    /// Switches how member nodes advance between routing instants. Safe
    /// at any point in a run — both modes produce bit-identical results
    /// (see [`StepMode`]) — so a caller may, say, go parallel for a bulk
    /// replay and drop back to sequential for fine-grained stepping.
    /// Switching to parallel spawns the worker pool; switching away joins
    /// it.
    pub fn set_step_mode(&mut self, mode: StepMode) {
        self.step_mode = mode;
        match mode.worker_threads() {
            Some(threads) => {
                if self.pool.as_ref().map(StepperPool::threads) != Some(threads) {
                    self.pool = Some(StepperPool::new(threads));
                }
            }
            None => self.pool = None,
        }
    }

    /// The active node-advancement mode.
    #[must_use]
    pub fn step_mode(&self) -> StepMode {
        self.step_mode
    }

    /// Sets the routing decision path at construction time:
    /// `Fleet::new(..)?.with_routing_mode(RoutingMode::Scan)`.
    #[must_use]
    pub fn with_routing_mode(mut self, mode: RoutingMode) -> Self {
        self.set_routing_mode(mode);
        self
    }

    /// Switches between the O(log n) indexed decision path and the O(n)
    /// scan reference path. Safe at any point in a run: the index is
    /// maintained in both modes from the same update stream, and both
    /// paths are bit-identical by contract (ties to the lowest node
    /// index, identical sampler draw sequences), so only the
    /// `nodes_examined` counter changes. Routers that do not support the
    /// index ([`IndexSupport::Scan`]) ignore this entirely.
    pub fn set_routing_mode(&mut self, mode: RoutingMode) {
        self.routing = mode;
    }

    /// The active routing decision path.
    #[must_use]
    pub fn routing_mode(&self) -> RoutingMode {
        self.routing
    }

    /// Sets the micro-batching epsilon at construction time:
    /// `Fleet::new(..)?.with_batch_epsilon(50e-6)`.
    #[must_use]
    pub fn with_batch_epsilon(mut self, eps_s: f64) -> Self {
        self.set_batch_epsilon(eps_s);
        self
    }

    /// Sets the micro-batching epsilon, seconds. A routing instant whose
    /// gap from the fleet clock is strictly below the epsilon is advanced
    /// inline on the coordinator — one `run_until` per node, the same
    /// calls the sequential stepper would make — instead of paying a
    /// stepper-pool round trip, and is tallied in
    /// [`CoordinatorStats::batched_instants`].
    ///
    /// Determinism contract: the epsilon changes *which thread* advances
    /// the nodes, never what they compute, so any epsilon produces
    /// results bit-identical to `0.0` (batching disabled, the default).
    /// Non-finite or negative values are clamped to `0.0`.
    pub fn set_batch_epsilon(&mut self, eps_s: f64) {
        self.batch_eps_s = if eps_s.is_finite() && eps_s > 0.0 {
            eps_s
        } else {
            0.0
        };
    }

    /// The active micro-batching epsilon, seconds.
    #[must_use]
    pub fn batch_epsilon(&self) -> f64 {
        self.batch_eps_s
    }

    /// Coordinator work counters accumulated so far (also on
    /// [`FleetSnapshot`] and [`FleetReport`]).
    #[must_use]
    pub fn coordinator_stats(&self) -> CoordinatorStats {
        self.stats
    }

    /// Attaches a deterministic failure schedule (replacing any previous
    /// one): crash/stall/drain events fire at their scheduled instants as
    /// the fleet clock passes them. Events aimed at out-of-range node
    /// indices, already-dead nodes, or whose action would leave zero
    /// routable nodes are skipped — a plan is best-effort, so it composes
    /// with autoscaling changing the roster underneath it.
    pub fn set_failure_plan(&mut self, plan: FailurePlan) {
        self.failure_events = plan.into_sorted_events();
        self.failure_cursor = 0;
    }

    /// Attaches a failure schedule at construction time:
    /// `Fleet::new(..)?.with_failure_plan(plan)`.
    #[must_use]
    pub fn with_failure_plan(mut self, plan: FailurePlan) -> Self {
        self.set_failure_plan(plan);
        self
    }

    /// Attaches (or replaces) the autoscaling policy. The scaler's first
    /// consultation is one policy interval after attachment; each tick
    /// sees a live [`FleetSnapshot`] and its decision executes under the
    /// policy guard rails (see [`ScalePolicy`]).
    pub fn set_scale_policy(&mut self, policy: ScalePolicy) {
        let scaler = policy.autoscaler.build();
        self.scale = Some(ScaleState {
            next_tick: self.now.after(policy.interval_s),
            scaler,
            policy,
            spawned: 0,
        });
    }

    /// Attaches the autoscaling policy at construction time:
    /// `Fleet::new(..)?.with_scale_policy(policy)`.
    #[must_use]
    pub fn with_scale_policy(mut self, policy: ScalePolicy) -> Self {
        self.set_scale_policy(policy);
        self
    }

    // --- Telemetry --------------------------------------------------------

    /// Turns on the flight recorder: query-lifecycle events
    /// (`Submitted → Routed → Admitted/Deferred/Shed → Dispatched →
    /// Completed/Violated`, plus `Requeued` detours) and node-lifecycle
    /// events flow into a [`Collector`] that merges coordinator and
    /// per-node streams deterministically.
    ///
    /// Determinism contract: enabling telemetry never perturbs the
    /// simulation — reports stay bit-identical to an untraced run — and
    /// the merged trace itself is bit-identical across
    /// [`StepMode`] and [`RoutingMode`], because every
    /// coordinator event fires on the routing thread at a virtual-time
    /// instant and node sinks are pulled in roster order at fixed points
    /// (the end of every [`Fleet::run_until`] /
    /// [`Fleet::run_to_completion`]).
    ///
    /// Call before submitting work: events for queries admitted earlier
    /// cannot be retroactively attributed. Each existing roster node is
    /// registered as a track and announced with a `NodeJoined` event at
    /// the current instant.
    pub fn enable_telemetry(&mut self, config: TraceConfig) {
        let models = self.models.iter().map(|m| m.name.clone()).collect();
        let mut tm = Collector::new(config, models);
        self.node_track.clear();
        self.trace_maps = vec![Vec::new(); self.drivers.len()];
        for (i, d) in self.drivers.iter_mut().enumerate() {
            let class = format!("{}c/{}", d.total_cores(), d.policy().name());
            self.node_track
                .push(tm.register_track(&self.names[i], &class));
            d.set_trace_sink(Box::new(tm.make_sink()));
            tm.coordinator(self.now.0, TraceEventKind::NodeJoined { node: i as u32 });
        }
        self.telemetry = Some(tm);
    }

    /// Enables the flight recorder at construction time:
    /// `Fleet::new(..)?.with_telemetry(TraceConfig::unbounded())`.
    #[must_use]
    pub fn with_telemetry(mut self, config: TraceConfig) -> Self {
        self.enable_telemetry(config);
        self
    }

    /// Whether the flight recorder is on.
    #[must_use]
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry.is_some()
    }

    /// A point-in-time copy of the metrics registry, when telemetry is
    /// enabled. Pulls every node's buffered events first, so histograms
    /// and the violation table are current to the fleet clock.
    pub fn telemetry_snapshot(&mut self) -> Option<TelemetrySnapshot> {
        self.pull_traces();
        self.telemetry.as_ref().map(Collector::snapshot)
    }

    /// Materializes the merged trace so far: every event, sorted by
    /// `(virtual time, track)` with the coordinator first within an
    /// instant. Pulls node sinks first. `None` when telemetry is off.
    pub fn trace_log(&mut self) -> Option<TraceLog> {
        self.pull_traces();
        self.telemetry.as_ref().map(Collector::log)
    }

    /// Drains every node's trace sink into the collector, in roster
    /// order, rewriting driver-local query indices into fleet trace ids.
    /// Extra pulls are harmless to the final merged log: the sort key is
    /// `(time, track)` and a node's events drain FIFO, so pull timing
    /// can never reorder the materialized trace.
    fn pull_traces(&mut self) {
        let Some(tm) = self.telemetry.as_mut() else {
            return;
        };
        let mut buf = std::mem::take(&mut self.trace_scratch);
        for (i, d) in self.drivers.iter_mut().enumerate() {
            buf.clear();
            d.drain_trace(&mut buf);
            let dropped = d.trace_dropped();
            if buf.is_empty() && dropped == 0 {
                continue;
            }
            tm.absorb_events(
                self.node_track[i],
                &mut buf,
                Some(&self.trace_maps[i]),
                dropped,
            );
        }
        self.trace_scratch = buf;
    }

    /// Records one coordinator lifecycle event when telemetry is on —
    /// the single `Option` branch every emission site pays.
    #[inline]
    fn emit(&mut self, at_s: f64, kind: TraceEventKind) {
        if let Some(tm) = self.telemetry.as_mut() {
            tm.coordinator(at_s, kind);
        }
    }

    // --- Observation ------------------------------------------------------

    /// Fleet clock, seconds.
    #[must_use]
    pub fn now_s(&self) -> f64 {
        self.now.0
    }

    /// Number of roster slots, living or not — departed nodes keep their
    /// slot so indices stay stable under churn.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.drivers.len()
    }

    /// Per-node lifecycle states, in fleet node order.
    #[must_use]
    pub fn node_states(&self) -> &[NodeState] {
        &self.node_state
    }

    /// Count of live (routable) nodes.
    #[must_use]
    pub fn live_nodes(&self) -> usize {
        self.index.live_len()
    }

    /// The fleet-level model catalog submissions are validated against.
    /// With per-node registries ([`Fleet::with_node_registries`]) the
    /// nodes may serve different compilations of these models.
    #[must_use]
    pub fn models(&self) -> &'a [CompiledModel] {
        self.models
    }

    /// Whether every routed query has completed and the front door is
    /// empty.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.pending.is_empty() && self.drivers.iter().all(Driver::is_idle)
    }

    /// Live load views for every node, in fleet order — what the router
    /// is shown at a routing decision (with the pressure field populated;
    /// routing skips it when nothing consumes it). Allocates a fresh
    /// `Vec` for the caller; the routing hot path itself reuses an
    /// internal scratch buffer and never goes through here.
    #[must_use]
    pub fn loads(&self) -> Vec<NodeLoad> {
        self.drivers
            .iter()
            .enumerate()
            .map(|(i, d)| load_of(d, i, true))
            .collect()
    }

    /// A point-in-time fleet view: per-node loads and routed/completed
    /// counts plus the pooled mid-run report. Does not perturb the run.
    #[must_use]
    pub fn snapshot(&self) -> FleetSnapshot {
        let nodes: Vec<NodeSnapshot> = self
            .loads()
            .into_iter()
            .zip(&self.drivers)
            .map(|(load, d)| NodeSnapshot {
                name: self.names[load.node].clone(),
                routed: self.routed[load.node],
                completed: d.completions().len(),
                state: self.node_state[load.node],
                load,
            })
            .collect();
        let report = merge_reports(
            &self
                .drivers
                .iter()
                .map(Driver::snapshot)
                .collect::<Vec<_>>(),
        );
        FleetSnapshot {
            now_s: self.now.0,
            submitted: self.submitted,
            rerouted: self.rerouted,
            completed: self.drivers.iter().map(|d| d.completions().len()).sum(),
            front_door: self.pending.len(),
            shed: self.shed,
            deferrals: self.deferrals,
            nodes,
            report,
            coordinator: self.stats,
            telemetry: self.telemetry.as_ref().map(Collector::snapshot),
        }
    }

    // --- Input ------------------------------------------------------------

    /// Submits one query to the fleet front door. The query is routed when
    /// the fleet clock reaches its arrival (clamped to *now* if already
    /// past). Returns the fleet-level submission sequence number.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownModel`] if the model is not in the
    /// registry and [`ClusterError::NonFiniteArrival`] for NaN/infinite
    /// arrival times.
    pub fn submit(&mut self, spec: &QuerySpec) -> Result<u64, ClusterError> {
        if !spec.arrival.0.is_finite() {
            return Err(ClusterError::NonFiniteArrival {
                arrival_s: spec.arrival.0,
            });
        }
        let model = self
            .models
            .iter()
            .position(|m| m.name == spec.model)
            .ok_or_else(|| ClusterError::UnknownModel {
                model: spec.model.clone(),
            })?;
        let arrival = if spec.arrival < self.now {
            self.now
        } else {
            spec.arrival
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        self.submitted += 1;
        self.emit(
            arrival.0,
            TraceEventKind::Submitted {
                query: seq,
                model: model as u32,
            },
        );
        self.pending.push(PendingQuery {
            due: arrival,
            arrival,
            seq,
            model,
            attempts: 0,
            trace: seq,
        });
        Ok(seq)
    }

    /// Submits a whole workload's generated stream, every arrival offset
    /// by the fleet's current clock. Atomic: stream model names are
    /// validated up front, so an error means nothing was submitted.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownModel`] if the workload references
    /// a model outside the registry.
    pub fn submit_stream(
        &mut self,
        workload: &WorkloadSpec,
        seed: u64,
    ) -> Result<Vec<u64>, ClusterError> {
        if let Some((name, _)) = workload
            .streams
            .iter()
            .find(|(name, _)| !self.models.iter().any(|m| &m.name == name))
        {
            return Err(ClusterError::UnknownModel {
                model: name.clone(),
            });
        }
        let base = self.now.0;
        workload
            .generate(seed)
            .iter()
            .map(|q| {
                self.submit(&QuerySpec {
                    model: q.model.clone(),
                    arrival: SimTime(base + q.arrival.0),
                })
            })
            .collect()
    }

    // --- Elasticity -------------------------------------------------------

    /// Adds a node to the roster at the current fleet instant, serving
    /// the fleet-level catalog. The new driver's clock is synced to the
    /// fleet clock and the node is immediately routable. Returns the new
    /// node's index.
    pub fn add_node(&mut self, spec: &NodeSpec) -> usize {
        let node = self.drivers.len();
        let mut driver = Driver::open(self.models, spec.sim_config());
        driver.run_until(self.now);
        if let Some(tm) = self.telemetry.as_mut() {
            let class = format!("{}c/{}", driver.total_cores(), driver.policy().name());
            self.node_track.push(tm.register_track(&spec.name, &class));
            driver.set_trace_sink(Box::new(tm.make_sink()));
            self.trace_maps.push(Vec::new());
            tm.coordinator(self.now.0, TraceEventKind::NodeJoined { node: node as u32 });
        }
        self.index.push(u64::from(driver.total_cores()).max(1));
        self.drivers.push(driver);
        self.names.push(spec.name.clone());
        self.routed.push(0);
        self.node_version.push(u64::MAX);
        self.node_state.push(NodeState::Live);
        self.stats.nodes_added += 1;
        node
    }

    /// Gracefully drains a node at the current fleet instant: it stops
    /// receiving new work, its queued-but-unstarted queries re-enter the
    /// front door (fresh routing, original arrival time — hold time
    /// counts against the SLO), and its in-flight work finishes before
    /// the node goes [`NodeState::Dead`]. Draining an already
    /// draining/dead node is a no-op.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownNode`] for an out-of-range index
    /// and [`ClusterError::FleetEmpty`] if the drain would leave zero
    /// routable nodes.
    pub fn drain_node(&mut self, node: usize) -> Result<(), ClusterError> {
        if node >= self.drivers.len() {
            return Err(ClusterError::UnknownNode { node });
        }
        if matches!(self.node_state[node], NodeState::Draining | NodeState::Dead) {
            return Ok(());
        }
        if self.would_empty(node) {
            return Err(ClusterError::FleetEmpty);
        }
        self.drain_node_inner(node);
        Ok(())
    }

    /// Crash-stops a node at the current fleet instant: every incomplete
    /// query on it — waiting *and* in-flight, with partial progress lost
    /// — re-enters the front door (the client-retry model), and the node
    /// goes [`NodeState::Dead`]. Work it already completed stays in the
    /// report. Killing a dead node is a no-op.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownNode`] for an out-of-range index
    /// and [`ClusterError::FleetEmpty`] if the kill would leave zero
    /// routable nodes.
    pub fn kill_node(&mut self, node: usize) -> Result<(), ClusterError> {
        if node >= self.drivers.len() {
            return Err(ClusterError::UnknownNode { node });
        }
        if self.node_state[node] == NodeState::Dead {
            return Ok(());
        }
        if self.would_empty(node) {
            return Err(ClusterError::FleetEmpty);
        }
        self.kill_node_inner(node);
        Ok(())
    }

    /// Whether removing `node` from the routable set would leave it
    /// empty. Only `Live` membership counts: stalled/draining nodes are
    /// already unroutable.
    fn would_empty(&self, node: usize) -> bool {
        self.index.live_len() - usize::from(self.node_state[node] == NodeState::Live) == 0
    }

    fn drain_node_inner(&mut self, node: usize) {
        self.node_state[node] = NodeState::Draining;
        self.draining_count += 1;
        self.index.set_routable(node, false);
        self.emit(
            self.now.0,
            TraceEventKind::NodeDraining { node: node as u32 },
        );
        let orphans = self.drivers[node].extract_waiting();
        self.reroute(node, orphans);
        self.stats.nodes_drained += 1;
        if self.drivers[node].is_idle() {
            self.node_state[node] = NodeState::Dead;
            self.draining_count -= 1;
            self.emit(
                self.now.0,
                TraceEventKind::NodeRetired { node: node as u32 },
            );
        }
    }

    fn kill_node_inner(&mut self, node: usize) {
        if self.node_state[node] == NodeState::Draining {
            self.draining_count -= 1;
        }
        self.node_state[node] = NodeState::Dead;
        self.index.set_routable(node, false);
        self.emit(self.now.0, TraceEventKind::NodeKilled { node: node as u32 });
        let orphans = self.drivers[node].halt();
        self.reroute(node, orphans);
        self.stats.nodes_killed += 1;
    }

    /// Makes a node unreachable until `at + duration`: no new work routes
    /// to it, in-flight work keeps executing (the network-partition
    /// model). Recovery is scheduled on the control timeline. Only called
    /// on `Live` nodes (plan application checks).
    fn stall_node_inner(&mut self, node: usize, duration_s: f64, at: SimTime) {
        self.node_state[node] = NodeState::Stalled;
        self.index.set_routable(node, false);
        self.emit(at.0, TraceEventKind::NodeStalled { node: node as u32 });
        self.stalls.push(Reverse((at.after(duration_s), node)));
    }

    /// Restores a stalled node to the routable set. A node that was
    /// drained or killed mid-stall stays where the stronger transition
    /// put it: the scheduled recovery becomes a no-op.
    fn recover_node(&mut self, node: usize) {
        if self.node_state[node] == NodeState::Stalled {
            self.node_state[node] = NodeState::Live;
            self.index.set_routable(node, true);
            self.emit(
                self.now.0,
                TraceEventKind::NodeRecovered { node: node as u32 },
            );
            // Force a re-key at the next decision: the node's masked key
            // went stale while routing could not observe it.
            self.node_version[node] = u64::MAX;
        }
    }

    /// Re-enters orphaned queries (from a drain or kill of `from_node`)
    /// at the front door: fresh submission tickets, due immediately,
    /// original arrival times (so the detour counts against their SLOs),
    /// deferral budget reset. Each orphan keeps its fleet trace id —
    /// looked up through the node's local-index table — so its lifecycle
    /// chain records the detour as a `Requeued` event rather than
    /// splitting into two spans.
    fn reroute(&mut self, from_node: usize, orphans: Vec<(usize, QuerySpec)>) {
        for (local, spec) in orphans {
            let model = self
                .models
                .iter()
                .position(|m| m.name == spec.model)
                .expect("orphaned queries reference catalog models");
            let seq = self.next_seq;
            self.next_seq += 1;
            self.rerouted += 1;
            let trace = self
                .trace_maps
                .get(from_node)
                .and_then(|m| m.get(local))
                .copied()
                .unwrap_or(seq);
            self.emit(
                self.now.0,
                TraceEventKind::Requeued {
                    query: trace,
                    from_node: from_node as u32,
                },
            );
            self.pending.push(PendingQuery {
                due: self.now,
                arrival: spec.arrival,
                seq,
                model,
                attempts: 0,
                trace,
            });
        }
    }

    /// Promotes drained-dry nodes to `Dead`. Gated on `draining_count`
    /// so churn-free runs pay one integer compare; called at the
    /// deterministic advance points of `run_until`, so the promotion
    /// instant is a pure function of the run.
    fn sweep_draining(&mut self) {
        if self.draining_count == 0 {
            return;
        }
        for (i, d) in self.drivers.iter().enumerate() {
            if self.node_state[i] == NodeState::Draining && d.is_idle() {
                self.node_state[i] = NodeState::Dead;
                self.draining_count -= 1;
                if let Some(tm) = self.telemetry.as_mut() {
                    tm.coordinator(self.now.0, TraceEventKind::NodeRetired { node: i as u32 });
                }
            }
        }
    }

    // --- The control timeline ---------------------------------------------

    /// The earliest pending control instant: the next failure event,
    /// stall recovery, provisioned join, or autoscaler tick.
    fn next_control_time(&self) -> Option<SimTime> {
        let mut next: Option<SimTime> = None;
        let mut fold = |t: SimTime| {
            if next.is_none_or(|cur| t < cur) {
                next = Some(t);
            }
        };
        if let Some(ev) = self.failure_events.get(self.failure_cursor) {
            fold(SimTime(ev.at_s));
        }
        if let Some(Reverse((t, _))) = self.stalls.peek() {
            fold(*t);
        }
        if let Some((t, _)) = self.pending_joins.front() {
            fold(*t);
        }
        if let Some(scale) = &self.scale {
            fold(scale.next_tick);
        }
        next
    }

    /// Applies every control action due at `ct`, in the fixed order
    /// failure events → stall recoveries → provisioned joins →
    /// autoscaler tick. The order is part of the determinism contract:
    /// within one instant, injected faults are observed by the recovery
    /// and scaling machinery, and the autoscaler tick sees the
    /// post-churn fleet.
    fn process_control_at(&mut self, ct: SimTime) {
        while let Some(ev) = self.failure_events.get(self.failure_cursor) {
            if SimTime(ev.at_s) > ct {
                break;
            }
            let ev = ev.clone();
            self.failure_cursor += 1;
            self.apply_failure(&ev, ct);
        }
        while let Some(&Reverse((t, node))) = self.stalls.peek() {
            if t > ct {
                break;
            }
            self.stalls.pop();
            self.recover_node(node);
        }
        while let Some((t, _)) = self.pending_joins.front() {
            if *t > ct {
                break;
            }
            let (_, spec) = self.pending_joins.pop_front().expect("peeked entry exists");
            self.add_node(&spec);
        }
        if self.scale.as_ref().is_some_and(|s| s.next_tick <= ct) {
            self.autoscaler_tick(ct);
        }
    }

    /// Applies one scheduled failure event, skipping it (by design, not
    /// error) when its target is out of range, already departed, or the
    /// last routable node — see [`Fleet::set_failure_plan`].
    fn apply_failure(&mut self, ev: &FailureEvent, ct: SimTime) {
        let node = ev.node;
        if node >= self.drivers.len() {
            return;
        }
        match ev.kind {
            FailureKind::Crash => {
                if self.node_state[node] != NodeState::Dead && !self.would_empty(node) {
                    self.kill_node_inner(node);
                }
            }
            FailureKind::Stall { duration_s } => {
                if self.node_state[node] == NodeState::Live && !self.would_empty(node) {
                    self.stall_node_inner(node, duration_s, ct);
                }
            }
            FailureKind::Drain => {
                if !matches!(self.node_state[node], NodeState::Draining | NodeState::Dead)
                    && !self.would_empty(node)
                {
                    self.drain_node_inner(node);
                }
            }
        }
    }

    /// One autoscaler consultation: decide over a live snapshot, execute
    /// under the policy guard rails, schedule the next tick.
    fn autoscaler_tick(&mut self, ct: SimTime) {
        let snapshot = self.snapshot();
        let Some(scale) = self.scale.as_mut() else {
            return;
        };
        scale.next_tick = ct.after(scale.policy.interval_s);
        match scale.scaler.decide(&snapshot) {
            ScaleDecision::Hold => {}
            ScaleDecision::ScaleOut { nodes } => {
                // Cap counts capacity that exists or is on its way:
                // live + stalled (they recover) + still-provisioning.
                let present = self
                    .node_state
                    .iter()
                    .filter(|s| matches!(s, NodeState::Live | NodeState::Stalled))
                    .count()
                    + self.pending_joins.len();
                let room = scale.policy.max_nodes.saturating_sub(present);
                let join_at = ct.after(scale.policy.provision_delay_s);
                let added = nodes.min(room);
                if added > 0 {
                    if let Some(tm) = self.telemetry.as_mut() {
                        tm.coordinator(
                            ct.0,
                            TraceEventKind::ScaleOut {
                                added: added as u32,
                            },
                        );
                    }
                }
                for _ in 0..added {
                    let mut spec = scale.policy.template.clone();
                    spec.name = format!("{}-{}", scale.policy.template.name, scale.spawned);
                    scale.spawned += 1;
                    self.pending_joins.push_back((join_at, spec));
                }
            }
            ScaleDecision::ScaleIn { nodes } => {
                let allowed = self
                    .index
                    .live_len()
                    .saturating_sub(scale.policy.min_nodes)
                    .min(nodes);
                // Newest capacity leaves first (highest roster index),
                // mirroring how it arrived.
                let targets: Vec<usize> = self
                    .node_state
                    .iter()
                    .enumerate()
                    .rev()
                    .filter(|(_, s)| **s == NodeState::Live)
                    .take(allowed)
                    .map(|(i, _)| i)
                    .collect();
                for node in targets {
                    self.emit(ct.0, TraceEventKind::ScaleIn { node: node as u32 });
                    self.drain_node_inner(node);
                }
            }
        }
    }

    // --- Time -------------------------------------------------------------

    /// Advances every node to `t` in lockstep and moves the fleet clock.
    ///
    /// Nodes are independent between routing instants, so the parallel
    /// mode farms the per-node event loops out to the stepper pool; the
    /// sequential mode runs them in fleet order on this thread. Either
    /// way every node has reached exactly `t` on return, which is what
    /// keeps the two modes bit-identical: the next routing decision sees
    /// the same per-node state regardless of which thread advanced each
    /// node.
    fn advance_nodes_to(&mut self, t: SimTime) {
        if t > self.now {
            match &self.pool {
                Some(pool) => pool.advance(&mut self.drivers, t),
                None => {
                    for d in &mut self.drivers {
                        d.run_until(t);
                    }
                }
            }
            // Counted by rule, not by pool presence, so Sequential and
            // Parallel runs report identical coordinator stats.
            self.stats.pool_round_trips += 1;
        } else {
            // Same-instant routing (a batch of arrivals at one `t`):
            // there is no time to advance, but events scheduled exactly
            // at `t` — e.g. the arrival injected for the previous
            // same-instant query — must still be processed so routing
            // sees live load. That is a cheap event-queue peek per node,
            // kept on the coordinator in *both* modes (identical calls,
            // identical thread ⇒ trivially bit-identical), instead of a
            // worker-pool round trip per query.
            for d in &mut self.drivers {
                d.run_until(t);
            }
        }
        self.now = t;
    }

    /// Advances the fleet to the routing instant `due`, micro-batching
    /// when the gap from the fleet clock is strictly below the epsilon:
    /// the nodes are advanced inline on the coordinator — the exact
    /// `run_until` calls the sequential stepper would make, so results
    /// are bit-identical — and no stepper round trip is paid.
    fn advance_for_routing(&mut self, due: SimTime) {
        if due > self.now && due.0 - self.now.0 < self.batch_eps_s {
            for d in &mut self.drivers {
                d.run_until(due);
            }
            self.stats.batched_instants += 1;
            self.now = due;
        } else {
            self.advance_nodes_to(due);
        }
    }

    /// Folds every node whose [`Driver::version`] moved since the last
    /// refresh back into the rank index. Only `IndexSupport::Indexed`
    /// routers maintain keys; the refresh runs in *both* routing modes so
    /// `index_updates` is mode-independent and mode switches are safe.
    ///
    /// The version compare itself is O(nodes) per routing instant — the
    /// same order as the event-queue peek `advance_nodes_to` already does
    /// — and is deliberately *not* tallied as examined nodes: the
    /// counters measure decision work (loads read, keys compared), and
    /// under steady load almost all compares are cheap no-ops while the
    /// scan path would have materialized every load in full.
    fn refresh_index(&mut self) {
        let want_pressure = self.router.needs_pressure();
        for (i, d) in self.drivers.iter().enumerate() {
            // Unroutable nodes are masked by the index (+inf keys), so
            // their stale keys are unobservable; skipping them keeps
            // drained/dead slots free — recovery forces a re-key by
            // resetting the version cache.
            if self.node_state[i] != NodeState::Live {
                continue;
            }
            let v = d.version();
            if self.node_version[i] != v {
                self.node_version[i] = v;
                let load = load_of(d, i, want_pressure);
                let key = self.router.rank(&load);
                self.index.update(i, key);
                self.stats.index_updates += 1;
            }
        }
    }

    /// Routes every front-door query due at or before `t` (strictly
    /// before when `strict` — used to stop at a control instant, whose
    /// action must be observed by queries due exactly then), advancing
    /// the fleet to each routing instant so routing sees live load.
    fn route_due_upto(&mut self, t: SimTime, strict: bool) {
        // Pressure is the one load signal that costs real work to read
        // (a monitor pass over every running unit, per node); skip it
        // when neither the router nor the admission controller consumes
        // it.
        let want_pressure = self.router.needs_pressure() || self.admission.needs_pressure();
        while let Some(p) = self.pending.peek() {
            if p.due > t || (strict && p.due == t) {
                break;
            }
            let p = self.pending.pop().expect("peeked entry exists");
            self.advance_for_routing(p.due);
            let model = &self.models[p.model];
            // The spec carries the *submitted* arrival: after a deferral
            // it lies in the past, and `inject_held` keeps it as the
            // latency baseline so hold time counts against the SLO.
            let query = QuerySpec {
                model: model.name.clone(),
                arrival: p.arrival,
            };
            self.stats.routing_decisions += 1;
            let node_count = self.drivers.len();
            let (node, load) = match self.support {
                IndexSupport::Scan => {
                    // Legacy path for custom routers: materialize the
                    // load batch (into the reused scratch buffer) and
                    // let the router scan it. Only routable nodes are
                    // materialized — scan routers pick a *position* in
                    // the batch, mapped back through `NodeLoad::node`.
                    let mut loads = std::mem::take(&mut self.scratch_loads);
                    loads.clear();
                    let states = &self.node_state;
                    loads.extend(
                        self.drivers
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| states[*i] == NodeState::Live)
                            .map(|(i, d)| load_of(d, i, want_pressure)),
                    );
                    let pos = self
                        .router
                        .route(&loads, model, &query)
                        .min(loads.len() - 1);
                    let node = loads[pos].node;
                    self.stats.nodes_examined += loads.len() as u64;
                    let load = loads[pos];
                    self.scratch_loads = loads;
                    (node, load)
                }
                IndexSupport::Indexed | IndexSupport::Oblivious => {
                    if self.support == IndexSupport::Indexed {
                        self.refresh_index();
                    }
                    let node = self
                        .router
                        .route_indexed(&self.index, self.routing, model, &query)
                        .min(node_count - 1);
                    self.stats.nodes_examined += self.index.take_examined();
                    // Admission reads one node's load, not the batch.
                    let load = load_of(&self.drivers[node], node, self.admission.needs_pressure());
                    self.stats.nodes_examined += 1;
                    (node, load)
                }
            };
            // One `Routed` event per routing decision — the pinned
            // equality `counts.routed == stats.routing_decisions` — then
            // exactly one of `Admitted`/`Deferred`/`Shed` for the offer.
            self.emit(
                p.due.0,
                TraceEventKind::Routed {
                    query: p.trace,
                    node: node as u32,
                    attempts: p.attempts,
                },
            );
            let decision = if p.attempts >= DEFER_HARD_CAP {
                AdmissionDecision::Shed
            } else {
                self.admission.decide(&load, model, p.attempts)
            };
            match decision {
                AdmissionDecision::Admit => {
                    let local = self.drivers[node]
                        .inject_held(&query)
                        .expect("model validated at submission");
                    self.routed[node] += 1;
                    if let Some(tm) = self.telemetry.as_mut() {
                        tm.coordinator(
                            p.due.0,
                            TraceEventKind::Admitted {
                                query: p.trace,
                                node: node as u32,
                                attempts: p.attempts,
                            },
                        );
                        let map = &mut self.trace_maps[node];
                        if map.len() <= local {
                            map.resize(local + 1, u64::MAX);
                        }
                        map[local] = p.trace;
                    }
                }
                AdmissionDecision::Defer { delay_s } => {
                    self.deferrals += 1;
                    // Clamp so a zero-delay controller still makes
                    // progress through its `attempts` counter.
                    let due = p.due.after(delay_s.max(1e-9));
                    self.emit(
                        p.due.0,
                        TraceEventKind::Deferred {
                            query: p.trace,
                            attempts: p.attempts + 1,
                            until_s: due.0,
                        },
                    );
                    self.pending.push(PendingQuery {
                        due,
                        arrival: p.arrival,
                        seq: p.seq,
                        model: p.model,
                        attempts: p.attempts + 1,
                        trace: p.trace,
                    });
                }
                AdmissionDecision::Shed => {
                    self.shed += 1;
                    *self.shed_per_model.entry(model.name.clone()).or_default() += 1;
                    self.emit(
                        p.due.0,
                        TraceEventKind::Shed {
                            query: p.trace,
                            model: p.model as u32,
                            attempts: p.attempts,
                        },
                    );
                }
            }
        }
    }

    /// Runs the fleet up to `t` seconds: routes every due arrival at its
    /// own instant, fires every control action (failures, recoveries,
    /// provisioned joins, autoscaler ticks) at its own instant, then
    /// advances all nodes to exactly `t`. Queries due exactly at a
    /// control instant route *after* it — a crash at `t` is observed by
    /// arrivals at `t`, never the other way around.
    pub fn run_until(&mut self, t_s: f64) {
        let t = SimTime(t_s);
        while let Some(ct) = self.next_control_time() {
            if ct > t {
                break;
            }
            self.route_due_upto(ct, true);
            if ct > self.now {
                self.advance_nodes_to(ct);
            }
            self.sweep_draining();
            self.process_control_at(ct);
        }
        self.route_due_upto(t, false);
        if t > self.now {
            self.advance_nodes_to(t);
        }
        self.sweep_draining();
        // The deterministic pull point: node sinks drain in roster order
        // at the end of every public advance, in both step modes.
        self.pull_traces();
    }

    /// Runs the fleet for another `dt_s` seconds.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidDuration`] if `dt_s` is NaN,
    /// infinite, or not strictly positive — silently accepting those
    /// would rewind the fleet clock or advance it to infinity.
    pub fn run_for(&mut self, dt_s: f64) -> Result<(), ClusterError> {
        if !dt_s.is_finite() || dt_s <= 0.0 {
            return Err(ClusterError::InvalidDuration { dt_s });
        }
        self.run_until(self.now.after(dt_s).0);
        Ok(())
    }

    /// Routes every remaining arrival and drains all nodes (in parallel
    /// when a stepper pool is active — the drain is embarrassingly
    /// parallel, and on large fleets it is most of the serving work).
    ///
    /// Control actions fire only up to the last front-door instant:
    /// failures, joins, and autoscaler ticks scheduled past the final
    /// arrival have no work left to affect and never fire (stall
    /// recoveries inside the drained span still complete, so a
    /// fleet that merely finished its backlog is not left partitioned).
    pub fn run_to_completion(&mut self) {
        while let Some(p) = self.pending.peek() {
            let t = p.due;
            self.run_until(t.0);
        }
        match &self.pool {
            Some(pool) => pool.drain(&mut self.drivers),
            None => {
                for d in &mut self.drivers {
                    d.run_to_completion();
                }
            }
        }
        self.stats.pool_round_trips += 1;
        let end = self
            .drivers
            .iter()
            .map(|d| d.now())
            .max()
            .unwrap_or(self.now);
        self.now = self.now.max(end);
        while let Some(&Reverse((t, node))) = self.stalls.peek() {
            if t > self.now {
                break;
            }
            self.stalls.pop();
            self.recover_node(node);
        }
        self.sweep_draining();
        self.pull_traces();
    }

    /// Finishes the fleet: drains everything and returns the final
    /// [`FleetReport`] with per-node and pooled statistics.
    #[must_use]
    pub fn finish(mut self) -> FleetReport {
        self.run_to_completion();
        let telemetry = self.telemetry.as_ref().map(Collector::snapshot);
        let per_node: Vec<veltair_sched::ServingReport> =
            self.drivers.into_iter().map(|d| d.finish().0).collect();
        FleetReport {
            merged: merge_reports(&per_node),
            per_node,
            node_names: self.names,
            routed_per_node: self.routed,
            node_states: self.node_state,
            submitted: self.submitted,
            rerouted: self.rerouted,
            shed: self.shed,
            shed_per_model: self.shed_per_model,
            deferrals: self.deferrals,
            coordinator: self.stats,
            telemetry,
        }
    }
}
