//! Deterministic failure injection for fleet runs.
//!
//! A [`FailurePlan`] is a schedule of node lifecycle events — crashes,
//! stalls, drains — applied by the fleet at exact virtual instants.
//! Plans are data, not callbacks: the same plan against the same seed
//! and workload produces a bit-identical [`FleetReport`](crate::FleetReport)
//! under every [`StepMode`](crate::StepMode) and
//! [`RoutingMode`](crate::RoutingMode), which is what makes failure
//! scenarios pinnable in tests.
//!
//! Events can be authored explicitly (the `try_` builder methods,
//! mirroring the validated-constructor pattern of the rest of the crate)
//! or drawn from a seeded random process ([`FailurePlan::try_seeded`]) —
//! exponentially distributed failure times with a Bernoulli crash/stall
//! split, the classic MTBF model, still fully deterministic per seed.
//!
//! Safety rail: the fleet *skips* any scheduled event that would leave
//! zero routable nodes (a front door with nowhere to route is a
//! configuration error, not a simulation state), so plans may be written
//! against fleets whose size the autoscaler changes at runtime.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::fleet::ClusterError;

/// What happens to the targeted node at a [`FailureEvent`]'s instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FailureKind {
    /// The node crash-stops: all incomplete queries (waiting and
    /// in-flight) are re-routed, partial progress is lost, the node is
    /// dead for the rest of the run.
    Crash,
    /// The node becomes unreachable for `duration_s` seconds: no new
    /// work is routed to it, in-flight work keeps executing, and it
    /// rejoins the routable set on recovery (the network-partition
    /// model).
    Stall {
        /// How long the node stays unreachable, seconds.
        duration_s: f64,
    },
    /// The node drains gracefully: unstarted queries are re-routed,
    /// in-flight work finishes here, then the node leaves the fleet.
    Drain,
}

impl FailureKind {
    /// Display name used in tables and scenario output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FailureKind::Crash => "crash",
            FailureKind::Stall { .. } => "stall",
            FailureKind::Drain => "drain",
        }
    }
}

/// One scheduled node lifecycle event.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureEvent {
    /// Fleet-clock instant the event fires, seconds.
    pub at_s: f64,
    /// Index of the targeted node. Events whose index is out of range
    /// when they fire (e.g. a plan written for a larger fleet) are
    /// skipped, so plans compose with autoscaling.
    pub node: usize,
    /// What happens to the node.
    pub kind: FailureKind,
}

/// A deterministic schedule of node failures, applied by
/// [`Fleet::set_failure_plan`](crate::Fleet::set_failure_plan).
///
/// Events fire in `(at_s, insertion order)` order; multiple events may
/// share an instant.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FailurePlan {
    events: Vec<FailureEvent>,
}

impl FailurePlan {
    /// An empty plan (no injected failures).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules a crash of `node` at `at_s`, validated.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidDuration`] if `at_s` is negative,
    /// NaN, or infinite.
    pub fn try_crash(mut self, at_s: f64, node: usize) -> Result<Self, ClusterError> {
        validate_instant(at_s)?;
        self.events.push(FailureEvent {
            at_s,
            node,
            kind: FailureKind::Crash,
        });
        Ok(self)
    }

    /// Schedules a stall of `node` at `at_s` for `duration_s` seconds,
    /// validated.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidDuration`] if `at_s` is negative,
    /// NaN, or infinite, or if `duration_s` is not strictly positive and
    /// finite (a zero-length stall would schedule a recovery at the same
    /// instant it fires — a no-op the caller almost certainly did not
    /// mean).
    pub fn try_stall(
        mut self,
        at_s: f64,
        node: usize,
        duration_s: f64,
    ) -> Result<Self, ClusterError> {
        validate_instant(at_s)?;
        if !duration_s.is_finite() || duration_s <= 0.0 {
            return Err(ClusterError::InvalidDuration { dt_s: duration_s });
        }
        self.events.push(FailureEvent {
            at_s,
            node,
            kind: FailureKind::Stall { duration_s },
        });
        Ok(self)
    }

    /// Schedules a graceful drain of `node` at `at_s`, validated.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidDuration`] if `at_s` is negative,
    /// NaN, or infinite.
    pub fn try_drain(mut self, at_s: f64, node: usize) -> Result<Self, ClusterError> {
        validate_instant(at_s)?;
        self.events.push(FailureEvent {
            at_s,
            node,
            kind: FailureKind::Drain,
        });
        Ok(self)
    }

    /// Draws a random plan from the classic MTBF model, deterministic per
    /// seed: failure instants arrive as a Poisson process with mean
    /// inter-failure time `mtbf_s` over `[0, horizon_s)`, each targeting
    /// a uniformly drawn node in `[0, nodes)` and stalling (for
    /// `stall_duration_s`) with probability `stall_prob`, crashing
    /// otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidDuration`] if `horizon_s`,
    /// `mtbf_s`, or `stall_duration_s` is not strictly positive and
    /// finite. `stall_prob` outside `[0, 1]` is clamped.
    pub fn try_seeded(
        seed: u64,
        nodes: usize,
        horizon_s: f64,
        mtbf_s: f64,
        stall_prob: f64,
        stall_duration_s: f64,
    ) -> Result<Self, ClusterError> {
        for dt in [horizon_s, mtbf_s, stall_duration_s] {
            if !dt.is_finite() || dt <= 0.0 {
                return Err(ClusterError::InvalidDuration { dt_s: dt });
            }
        }
        let stall_prob = stall_prob.clamp(0.0, 1.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = Self::new();
        let mut t = 0.0;
        loop {
            // Inverse-CDF exponential sample (the `1e-12` floor keeps
            // `ln` finite), matching the workload generator's idiom.
            let u: f64 = rng.gen_range(1e-12..1.0);
            t += -u.ln() * mtbf_s;
            if t >= horizon_s {
                break;
            }
            let node = usize::try_from(rng.gen_range(0..nodes as u64)).expect("fleet sizes fit");
            let stall: f64 = rng.gen_range(0.0..1.0);
            plan = if stall < stall_prob {
                plan.try_stall(t, node, stall_duration_s)?
            } else {
                plan.try_crash(t, node)?
            };
        }
        Ok(plan)
    }

    /// The scheduled events in insertion order (not necessarily time
    /// order; the fleet sorts stably by instant when the plan is
    /// attached).
    #[must_use]
    pub fn events(&self) -> &[FailureEvent] {
        &self.events
    }

    /// Whether the plan schedules no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Consumes the plan, returning its events stably sorted by instant
    /// (ties keep insertion order) — the form the fleet's control
    /// timeline walks with a cursor.
    #[must_use]
    pub fn into_sorted_events(self) -> Vec<FailureEvent> {
        let mut events = self.events;
        events.sort_by(|a, b| a.at_s.partial_cmp(&b.at_s).expect("validated finite"));
        events
    }
}

fn validate_instant(at_s: f64) -> Result<(), ClusterError> {
    if !at_s.is_finite() || at_s < 0.0 {
        return Err(ClusterError::InvalidDuration { dt_s: at_s });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_validate_instants_and_durations() {
        for bad in [-1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                FailurePlan::new().try_crash(bad, 0),
                Err(ClusterError::InvalidDuration { .. })
            ));
            assert!(matches!(
                FailurePlan::new().try_drain(bad, 0),
                Err(ClusterError::InvalidDuration { .. })
            ));
            assert!(matches!(
                FailurePlan::new().try_stall(1.0, 0, bad),
                Err(ClusterError::InvalidDuration { .. })
            ));
        }
        assert!(matches!(
            FailurePlan::new().try_stall(1.0, 0, 0.0),
            Err(ClusterError::InvalidDuration { dt_s }) if dt_s == 0.0
        ));
        // at_s == 0.0 is a valid instant (fail at the starting gun).
        let plan = FailurePlan::new().try_crash(0.0, 2).expect("valid");
        assert_eq!(plan.events().len(), 1);
    }

    #[test]
    fn sorted_events_are_stable_by_insertion() {
        let plan = FailurePlan::new()
            .try_crash(5.0, 0)
            .and_then(|p| p.try_drain(1.0, 1))
            .and_then(|p| p.try_stall(5.0, 2, 0.5))
            .expect("valid");
        let sorted = plan.into_sorted_events();
        assert_eq!(sorted[0].node, 1);
        assert_eq!(sorted[1].node, 0, "ties keep insertion order");
        assert_eq!(sorted[2].node, 2);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_bounded() {
        let a = FailurePlan::try_seeded(42, 8, 100.0, 10.0, 0.5, 2.0).expect("valid");
        let b = FailurePlan::try_seeded(42, 8, 100.0, 10.0, 0.5, 2.0).expect("valid");
        assert_eq!(a, b);
        assert!(!a.is_empty(), "a 100 s horizon at 10 s MTBF draws events");
        for ev in a.events() {
            assert!(ev.at_s >= 0.0 && ev.at_s < 100.0);
            assert!(ev.node < 8);
        }
        let c = FailurePlan::try_seeded(43, 8, 100.0, 10.0, 0.5, 2.0).expect("valid");
        assert_ne!(a, c, "different seeds draw different plans");
        assert!(matches!(
            FailurePlan::try_seeded(1, 4, -1.0, 10.0, 0.5, 2.0),
            Err(ClusterError::InvalidDuration { .. })
        ));
    }
}
