//! Fleet member configuration and the per-node load view routers consume.

use serde::{Deserialize, Serialize};
use veltair_compiler::SelectorKind;
use veltair_proxy::InterferenceProxy;
use veltair_sched::{Policy, ProjectionConfig, SimConfig};
use veltair_sim::MachineConfig;

/// Configuration of one fleet member: a machine, the scheduling policy it
/// runs, and (optionally) a trained interference proxy for its monitor.
///
/// Nodes are independent — a fleet may mix big and small machines and
/// heterogeneous policies (e.g. Veltair-FULL flagships next to PREMA
/// legacy boxes); the routing layer sees them only through [`NodeLoad`].
#[derive(Debug, Clone)]
pub struct NodeSpec {
    /// Display name used in fleet snapshots and example tables.
    pub name: String,
    /// The machine this node serves on.
    pub machine: MachineConfig,
    /// The scheduling/compilation policy this node runs.
    pub policy: Policy,
    /// Optional trained interference proxy (otherwise the node's monitor
    /// is the oracle).
    pub proxy: Option<InterferenceProxy>,
    /// The node's runtime version-selection policy (default: the
    /// calibrated hysteresis ladder; [`SelectorKind::PressureLadder`]
    /// replays pre-redesign runs bit for bit). Per-node, so a fleet can
    /// run calibration candidates side by side with the incumbent — only
    /// consulted when `policy` has adaptive compilation.
    pub selector: SelectorKind,
    /// The node's predictive pressure projection
    /// ([`ProjectionConfig::disabled`] reproduces the instantaneous
    /// monitor). Per-node for the same reason as `selector`.
    pub projection: ProjectionConfig,
}

impl NodeSpec {
    /// A node with the oracle monitor.
    #[must_use]
    pub fn new(name: &str, machine: MachineConfig, policy: Policy) -> Self {
        Self {
            name: name.to_string(),
            machine,
            policy,
            proxy: None,
            selector: SelectorKind::default(),
            projection: ProjectionConfig::default(),
        }
    }

    /// Installs a trained interference proxy on this node.
    #[must_use]
    pub fn with_proxy(mut self, proxy: InterferenceProxy) -> Self {
        self.proxy = Some(proxy);
        self
    }

    /// Installs a runtime version-selection policy on this node.
    #[must_use]
    pub fn with_selector(mut self, selector: SelectorKind) -> Self {
        self.selector = selector;
        self
    }

    /// Overrides the node's predictive pressure projection.
    #[must_use]
    pub fn with_projection(mut self, projection: ProjectionConfig) -> Self {
        self.projection = projection;
        self
    }

    /// The node's driver configuration.
    #[must_use]
    pub fn sim_config(&self) -> SimConfig {
        let mut cfg = SimConfig::new(self.machine.clone(), self.policy)
            .with_selector(self.selector)
            .with_projection(self.projection);
        if let Some(p) = &self.proxy {
            cfg = cfg.with_proxy(p.clone());
        }
        cfg
    }
}

/// Lifecycle state of a fleet member under elastic churn.
///
/// Nodes never leave the roster: a drained or killed node keeps its
/// index (so per-node statistics, the load index layout, and therefore
/// bit-determinism are unaffected) and is merely masked out of routing.
///
/// * `Live` — routable, serving.
/// * `Stalled` — temporarily unreachable (fault injection): no new work
///   is routed to it, but in-flight work keeps executing — the
///   network-partition model, where the machine is healthy but the
///   front door cannot reach it. Recovers to `Live` at a scheduled
///   instant.
/// * `Draining` — no new work; queued-but-unstarted queries were
///   re-routed at drain time and in-flight work finishes here. Becomes
///   `Dead` once idle.
/// * `Dead` — gone. A killed node's incomplete queries (waiting *and*
///   in-flight) were re-routed at kill time; its completed work stays in
///   the report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeState {
    /// Routable and serving.
    Live,
    /// Temporarily unreachable; in-flight work continues, recovery is
    /// scheduled.
    Stalled,
    /// Finishing in-flight work; unstarted work was re-routed.
    Draining,
    /// Removed from service (drain completed, or crash-killed).
    Dead,
}

impl NodeState {
    /// Display name used in tables and scenario output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            NodeState::Live => "live",
            NodeState::Stalled => "stalled",
            NodeState::Draining => "draining",
            NodeState::Dead => "dead",
        }
    }
}

/// A point-in-time view of one node's load, read off its driver at a
/// routing decision. This is the whole routing interface: routers and
/// admission controllers see nothing else, so any signal a policy needs
/// must be exported here (and, transitively, from `Driver`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeLoad {
    /// Index of the node within the fleet.
    pub node: usize,
    /// Queries admitted to this node but not yet completed.
    pub outstanding: usize,
    /// Queries waiting in the node's admission queues.
    pub queued: usize,
    /// Scheduling units currently holding cores.
    pub in_flight: usize,
    /// Cores currently granted to in-flight units.
    pub busy_cores: u32,
    /// The node machine's total cores.
    pub total_cores: u32,
    /// `busy_cores / total_cores`, in `[0, 1]`.
    pub occupancy: f64,
    /// The pressure a new tenant would face on this node: the node's own
    /// monitored co-runner estimate (oracle or counter proxy) projected
    /// over its queued backlog. Temporal nodes (PREMA, AI-MT) report
    /// their serialization pressure `q / (q + 1)` over outstanding
    /// queries instead: a new tenant there faces whole-machine
    /// exclusion, not spatial co-location (see `Driver::pressure`).
    pub pressure: f64,
}

impl NodeLoad {
    /// Outstanding queries per core: the queue-depth signal normalized so
    /// big and small machines compare fairly in heterogeneous fleets.
    #[must_use]
    pub fn outstanding_per_core(&self) -> f64 {
        self.outstanding as f64 / f64::from(self.total_cores.max(1))
    }
}
