//! Algebraic properties of `merge_reports`, pinned with seeded randomized
//! reports: pooling per-node statistics must be **order-invariant** and
//! **associative** — merging node reports in any order, or in any
//! grouping of partial merges, yields the same pooled percentiles and
//! counters. This is the regression fence around the pooled-vs-averaged
//! percentile fix: any future "optimization" that collapses samples into
//! per-node percentiles before merging breaks these properties
//! immediately (percentile-of-pool is order-free; average-of-percentiles
//! depends on the grouping).
//!
//! Exactness: counters and sample-selected statistics (percentiles, max)
//! must match bit for bit under reordering. Floating-point *sums*
//! (latency sums, core-seconds) are compared to within a tight relative
//! tolerance instead — addition order legitimately perturbs the last ulp.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use veltair_cluster::merge_reports;
use veltair_sched::{ModelStats, ServingReport};

const MODEL_POOL: [&str; 3] = ["alpha", "beta", "gamma"];

fn arb_report(rng: &mut StdRng) -> ServingReport {
    let mut r = ServingReport::default();
    for name in MODEL_POOL {
        if rng.gen_range(0u32..4) == 0 {
            continue; // some nodes never saw this model
        }
        let n = rng.gen_range(1usize..40);
        let latencies: Vec<f64> = (0..n).map(|_| rng.gen_range(0.001f64..2.0)).collect();
        let qos = rng.gen_range(0.01f64..1.0);
        r.per_model.insert(
            name.to_string(),
            ModelStats {
                queries: n,
                satisfied: latencies.iter().filter(|&&l| l <= qos).count(),
                latency_sum_s: latencies.iter().sum(),
                latency_max_s: latencies.iter().fold(0.0, |a: f64, &b| a.max(b)),
                latencies_s: latencies,
            },
        );
    }
    r.conflicts = rng.gen_range(0u64..100);
    r.dispatches = rng.gen_range(0u64..500);
    r.preemptions = rng.gen_range(0u64..50);
    r.core_seconds = rng.gen_range(0.0f64..300.0);
    r.makespan_s = rng.gen_range(0.1f64..10.0);
    r.peak_cores = rng.gen_range(1u32..64);
    r
}

fn close(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1e-12);
    (a - b).abs() <= 1e-12 * scale
}

/// Everything except raw sample order and float-sum ulps must agree.
fn assert_equivalent(a: &ServingReport, b: &ServingReport, what: &str) {
    assert_eq!(
        a.per_model.keys().collect::<Vec<_>>(),
        b.per_model.keys().collect::<Vec<_>>(),
        "{what}: model sets differ"
    );
    for (name, sa) in &a.per_model {
        let sb = &b.per_model[name];
        assert_eq!(sa.queries, sb.queries, "{what}: {name} query count");
        assert_eq!(sa.satisfied, sb.satisfied, "{what}: {name} satisfied");
        assert!(
            sa.latency_max_s == sb.latency_max_s,
            "{what}: {name} max latency {} != {}",
            sa.latency_max_s,
            sb.latency_max_s
        );
        assert!(
            close(sa.latency_sum_s, sb.latency_sum_s),
            "{what}: {name} latency sums diverged beyond ulp noise"
        );
        // The pooled percentiles are *selected samples*, so they must be
        // bitwise identical no matter how the pool was assembled.
        for p in [10.0, 50.0, 90.0, 95.0, 99.0] {
            let pa = sa.percentile_latency_s(p);
            let pb = sb.percentile_latency_s(p);
            assert!(
                pa == pb,
                "{what}: {name} p{p} {pa:e} != {pb:e} — pooling is order-sensitive"
            );
        }
    }
    assert_eq!(a.conflicts, b.conflicts, "{what}: conflicts");
    assert_eq!(a.dispatches, b.dispatches, "{what}: dispatches");
    assert_eq!(a.preemptions, b.preemptions, "{what}: preemptions");
    assert_eq!(a.peak_cores, b.peak_cores, "{what}: peak cores");
    assert!(a.makespan_s == b.makespan_s, "{what}: makespan");
    assert!(
        close(a.core_seconds, b.core_seconds),
        "{what}: core-seconds"
    );
    assert!(close(a.avg_cores, b.avg_cores), "{what}: avg cores");
}

/// Merging the same node reports in any order yields the same pooled
/// report.
#[test]
fn merge_is_order_invariant() {
    let mut rng = StdRng::seed_from_u64(0x3e96e1);
    for case in 0..24 {
        let reports: Vec<ServingReport> = (0..rng.gen_range(2usize..7))
            .map(|_| arb_report(&mut rng))
            .collect();
        let baseline = merge_reports(&reports);
        for _ in 0..4 {
            let mut shuffled = reports.clone();
            shuffled.shuffle(&mut rng);
            let merged = merge_reports(&shuffled);
            assert_equivalent(&baseline, &merged, &format!("case {case}"));
        }
    }
}

/// Merging is associative: any grouping of partial merges — pairwise
/// left-fold, pairwise right-fold, or an arbitrary random partition
/// merged in two levels — pools to the same statistics as one flat merge.
#[test]
fn merge_is_associative_under_arbitrary_grouping() {
    let mut rng = StdRng::seed_from_u64(0x3e96e2);
    for case in 0..24 {
        let reports: Vec<ServingReport> = (0..rng.gen_range(3usize..8))
            .map(|_| arb_report(&mut rng))
            .collect();
        let flat = merge_reports(&reports);

        // Left fold: ((r0 ⊕ r1) ⊕ r2) ⊕ ...
        let left = reports.iter().skip(1).fold(reports[0].clone(), |acc, r| {
            merge_reports(&[acc, r.clone()])
        });
        assert_equivalent(&flat, &left, &format!("case {case}: left fold"));

        // Right fold: r0 ⊕ (r1 ⊕ (r2 ⊕ ...))
        let right = reports
            .iter()
            .rev()
            .skip(1)
            .fold(reports.last().unwrap().clone(), |acc, r| {
                merge_reports(&[r.clone(), acc])
            });
        assert_equivalent(&flat, &right, &format!("case {case}: right fold"));

        // Random two-level partition: merge random contiguous chunks,
        // then merge the chunk merges.
        let mut chunks: Vec<ServingReport> = Vec::new();
        let mut rest = reports.as_slice();
        while !rest.is_empty() {
            let take = rng.gen_range(1usize..=rest.len());
            chunks.push(merge_reports(&rest[..take]));
            rest = &rest[take..];
        }
        let two_level = merge_reports(&chunks);
        assert_equivalent(&flat, &two_level, &format!("case {case}: two-level"));
    }
}

/// The degenerate groupings behave: merging nothing is the identity
/// report, and merging one report preserves its statistics.
#[test]
fn merge_identity_and_singleton() {
    let empty = merge_reports(&[]);
    assert_eq!(empty.total_queries(), 0);
    assert_eq!(empty.makespan_s, 0.0);

    let mut rng = StdRng::seed_from_u64(0x3e96e3);
    for _ in 0..8 {
        let r = arb_report(&mut rng);
        let merged = merge_reports(std::slice::from_ref(&r));
        // avg_cores is re-derived from core-seconds over makespan by the
        // merge, so compare the underlying fields, not the whole struct.
        assert_eq!(merged.per_model, r.per_model);
        assert_eq!(merged.conflicts, r.conflicts);
        assert!(merged.makespan_s == r.makespan_s);
        assert!(close(merged.core_seconds, r.core_seconds));
    }
}

/// The property the whole module exists for, stated directly: pooling
/// then taking the percentile is *not* the same as averaging per-node
/// percentiles — and the merge implements the former.
#[test]
fn pooled_percentile_is_not_an_average_of_node_percentiles() {
    let stats = |latencies: &[f64]| ModelStats {
        queries: latencies.len(),
        satisfied: 0,
        latency_sum_s: latencies.iter().sum(),
        latency_max_s: latencies.iter().fold(0.0, |a: f64, &b| a.max(b)),
        latencies_s: latencies.to_vec(),
    };
    let fast: Vec<f64> = (1..=50).map(|i| 0.002 * i as f64).collect();
    let slow: Vec<f64> = (1..=50).map(|i| 1.0 + 0.002 * i as f64).collect();
    let mut a = ServingReport::default();
    a.per_model.insert("m".into(), stats(&fast));
    let mut b = ServingReport::default();
    b.per_model.insert("m".into(), stats(&slow));

    let merged = merge_reports(&[a.clone(), b.clone()]);
    let pooled_p95 = merged.per_model["m"].p95_latency_s();
    let averaged_p95 = (a.per_model["m"].p95_latency_s() + b.per_model["m"].p95_latency_s()) / 2.0;
    assert!(
        pooled_p95 > 1.0,
        "the pooled tail must come from the slow node"
    );
    assert!(
        (pooled_p95 - averaged_p95).abs() > 0.3,
        "synthetic case failed to separate pooled from averaged"
    );
}
