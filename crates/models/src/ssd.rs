//! SSD with a ResNet-34 backbone at 1200x1200 (the MLPerf "SSD-Large"
//! heavy object-detection workload).

use veltair_tensor::{ActKind, FeatureMap, Layer, ModelGraph, OpKind, PoolKind};

use crate::catalog::{ModelSpec, WorkloadClass};

fn conv_bn_relu(
    layers: &mut Vec<Layer>,
    name: &str,
    input: FeatureMap,
    out_ch: usize,
    kernel: usize,
    stride: usize,
) -> FeatureMap {
    let pad = kernel / 2;
    let conv = Layer::conv2d(
        name,
        input,
        out_ch,
        (kernel, kernel),
        (stride, stride),
        (pad, pad),
    );
    let out = conv.output();
    layers.push(conv);
    layers.push(Layer::new(format!("{name}_bn"), OpKind::BatchNorm, out));
    layers.push(Layer::activation(
        format!("{name}_relu"),
        out,
        ActKind::Relu,
    ));
    out
}

/// One ResNet basic block: two 3x3 convs plus the residual add.
fn basic_block(
    layers: &mut Vec<Layer>,
    name: &str,
    input: FeatureMap,
    out_ch: usize,
    stride: usize,
) -> FeatureMap {
    let a = conv_bn_relu(layers, &format!("{name}_a"), input, out_ch, 3, stride);
    let b = conv_bn_relu(layers, &format!("{name}_b"), a, out_ch, 3, 1);
    if stride != 1 || input.c != out_ch {
        conv_bn_relu(layers, &format!("{name}_proj"), input, out_ch, 1, stride);
    }
    layers.push(Layer::new(format!("{name}_add"), OpKind::EltwiseAdd, b));
    b
}

/// Builds SSD-ResNet34: the truncated ResNet-34 backbone, SSD extra feature
/// layers, and per-scale detection heads.
#[must_use]
pub fn ssd_resnet34() -> ModelSpec {
    let mut layers = Vec::new();
    let input = FeatureMap::nchw(1, 3, 1200, 1200);
    // Stem.
    let stem = conv_bn_relu(&mut layers, "conv1", input, 64, 7, 2);
    let pool = Layer::new(
        "pool1",
        OpKind::Pool {
            kind: PoolKind::Max,
            kernel: (3, 3),
            stride: (2, 2),
        },
        stem,
    );
    let mut x = pool.output();
    layers.push(pool);
    x = FeatureMap::nchw(1, x.c, 300, 300);

    // ResNet-34 stages; MLPerf SSD truncates after stage 3 and keeps the
    // stage-3 stride at 1 to preserve a 75x75 detection grid... we follow
    // the published [3, 4, 6] block plan with strides [1, 2, 2] -> 75^2.
    let plan: [(usize, usize, usize); 3] = [(3, 64, 1), (4, 128, 2), (6, 256, 2)];
    for (si, (blocks, ch, stride)) in plan.into_iter().enumerate() {
        for b in 0..blocks {
            let s = if b == 0 { stride } else { 1 };
            x = basic_block(&mut layers, &format!("s{}b{}", si + 2, b), x, ch, s);
        }
    }

    // SSD extra feature pyramid: five downsampling 1x1 -> 3x3/2 pairs.
    let extra_plan: [(usize, usize); 5] =
        [(256, 512), (256, 512), (128, 256), (128, 256), (128, 256)];
    for (i, (mid, out)) in extra_plan.into_iter().enumerate() {
        let t = conv_bn_relu(&mut layers, &format!("extra{i}_1"), x, mid, 1, 1);
        x = conv_bn_relu(&mut layers, &format!("extra{i}_2"), t, out, 3, 2);
    }

    // Detection heads: one localization (4 coords) and one classification
    // (81 classes) 3x3 conv per pyramid scale, 6 anchors each. We attach
    // them to the stage-3 map and the five extra maps.
    let head_inputs = [
        FeatureMap::nchw(1, 256, 75, 75),
        FeatureMap::nchw(1, 512, 38, 38),
        FeatureMap::nchw(1, 512, 19, 19),
        FeatureMap::nchw(1, 256, 10, 10),
        FeatureMap::nchw(1, 256, 5, 5),
        FeatureMap::nchw(1, 256, 3, 3),
    ];
    for (i, fm) in head_inputs.into_iter().enumerate() {
        let loc = Layer::conv2d(format!("head{i}_loc"), fm, 6 * 4, (3, 3), (1, 1), (1, 1));
        layers.push(loc);
        let cls = Layer::conv2d(format!("head{i}_cls"), fm, 6 * 81, (3, 3), (1, 1), (1, 1));
        let cls_out = cls.output();
        layers.push(cls);
        if i == head_inputs.len() - 1 {
            layers.push(Layer::new("softmax", OpKind::Softmax, cls_out));
        }
    }

    ModelSpec {
        graph: ModelGraph::new("ssd_resnet34", layers),
        qos_ms: 100.0,
        class: WorkloadClass::Heavy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_a_heavy_workload() {
        // MLPerf SSD-Large is ~200-450 GFLOPs depending on the head config.
        let g = ssd_resnet34().graph.total_flops() / 1e9;
        assert!((100.0..=500.0).contains(&g), "got {g} GFLOPs");
    }

    #[test]
    fn backbone_block_structure() {
        let m = ssd_resnet34();
        let adds = m
            .graph
            .layers
            .iter()
            .filter(|l| matches!(l.op, OpKind::EltwiseAdd))
            .count();
        assert_eq!(adds, 3 + 4 + 6);
    }

    #[test]
    fn detection_heads_cover_six_scales() {
        let m = ssd_resnet34();
        let heads = m
            .graph
            .layers
            .iter()
            .filter(|l| l.name.starts_with("head"))
            .count();
        assert_eq!(heads, 12);
    }

    #[test]
    fn dominates_light_models() {
        let ssd = ssd_resnet34().graph.total_flops();
        let yolo = crate::yolo::tiny_yolo_v2().graph.total_flops();
        assert!(ssd > 20.0 * yolo);
    }
}
