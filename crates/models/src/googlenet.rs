//! GoogLeNet / Inception-v1 (Szegedy et al., CVPR 2015) at 224x224.

use veltair_tensor::{ActKind, FeatureMap, Layer, ModelGraph, OpKind, PoolKind};

use crate::catalog::{ModelSpec, WorkloadClass};

fn conv_relu(
    layers: &mut Vec<Layer>,
    name: &str,
    input: FeatureMap,
    out_ch: usize,
    kernel: usize,
    stride: usize,
) -> FeatureMap {
    let pad = kernel / 2;
    let conv = Layer::conv2d(
        name,
        input,
        out_ch,
        (kernel, kernel),
        (stride, stride),
        (pad, pad),
    );
    let out = conv.output();
    layers.push(conv);
    layers.push(Layer::activation(
        format!("{name}_relu"),
        out,
        ActKind::Relu,
    ));
    out
}

fn max_pool(
    layers: &mut Vec<Layer>,
    name: &str,
    input: FeatureMap,
    kernel: usize,
    stride: usize,
) -> FeatureMap {
    let pool = Layer::new(
        name,
        OpKind::Pool {
            kind: PoolKind::Max,
            kernel: (kernel, kernel),
            stride: (stride, stride),
        },
        input,
    );
    let out = pool.output();
    layers.push(pool);
    out
}

/// Channel plan of one inception cell:
/// `(#1x1, #3x3 reduce, #3x3, #5x5 reduce, #5x5, pool proj)`.
type InceptionPlan = (usize, usize, usize, usize, usize, usize);

/// Appends one inception module (branches linearized in execution order)
/// and returns the concatenated output map.
fn inception(
    layers: &mut Vec<Layer>,
    name: &str,
    input: FeatureMap,
    plan: InceptionPlan,
) -> FeatureMap {
    let (b1, r3, b3, r5, b5, bp) = plan;
    // Branch 1: 1x1.
    conv_relu(layers, &format!("{name}_1x1"), input, b1, 1, 1);
    // Branch 2: 1x1 reduce -> 3x3.
    let t = conv_relu(layers, &format!("{name}_3x3r"), input, r3, 1, 1);
    conv_relu(layers, &format!("{name}_3x3"), t, b3, 3, 1);
    // Branch 3: 1x1 reduce -> 5x5.
    let t = conv_relu(layers, &format!("{name}_5x5r"), input, r5, 1, 1);
    conv_relu(layers, &format!("{name}_5x5"), t, b5, 5, 1);
    // Branch 4: 3x3 max pool -> 1x1 projection.
    let p = Layer::new(
        format!("{name}_poolb"),
        OpKind::Pool {
            kind: PoolKind::Max,
            kernel: (3, 3),
            stride: (1, 1),
        },
        input,
    );
    // 3x3/1 pool with implicit same-padding keeps the spatial extent; our
    // pool has no padding so we reuse the input extent for the projection.
    layers.push(p);
    conv_relu(
        layers,
        &format!("{name}_poolp"),
        FeatureMap::nchw(input.n, input.c, input.h, input.w),
        bp,
        1,
        1,
    );
    FeatureMap::nchw(input.n, b1 + b3 + b5 + bp, input.h, input.w)
}

/// Builds GoogLeNet: stem, nine inception cells, classifier.
#[must_use]
pub fn googlenet() -> ModelSpec {
    let mut layers = Vec::new();
    let input = FeatureMap::nchw(1, 3, 224, 224);
    let x = conv_relu(&mut layers, "conv1", input, 64, 7, 2);
    let x = max_pool(&mut layers, "pool1", x, 3, 2);
    let x = conv_relu(&mut layers, "conv2r", x, 64, 1, 1);
    let x = conv_relu(&mut layers, "conv2", x, 192, 3, 1);
    let x = max_pool(&mut layers, "pool2", x, 3, 2);
    // Normalize to the canonical 28x28 grid (pooling rounding).
    let x = FeatureMap::nchw(1, x.c, 28, 28);

    let x = inception(&mut layers, "3a", x, (64, 96, 128, 16, 32, 32));
    let x = inception(&mut layers, "3b", x, (128, 128, 192, 32, 96, 64));
    let x = max_pool(&mut layers, "pool3", x, 3, 2);
    let x = FeatureMap::nchw(1, x.c, 14, 14);

    let x = inception(&mut layers, "4a", x, (192, 96, 208, 16, 48, 64));
    let x = inception(&mut layers, "4b", x, (160, 112, 224, 24, 64, 64));
    let x = inception(&mut layers, "4c", x, (128, 128, 256, 24, 64, 64));
    let x = inception(&mut layers, "4d", x, (112, 144, 288, 32, 64, 64));
    let x = inception(&mut layers, "4e", x, (256, 160, 320, 32, 128, 128));
    let x = max_pool(&mut layers, "pool4", x, 3, 2);
    let x = FeatureMap::nchw(1, x.c, 7, 7);

    let x = inception(&mut layers, "5a", x, (256, 160, 320, 32, 128, 128));
    let x = inception(&mut layers, "5b", x, (384, 192, 384, 48, 128, 128));

    let gap = Layer::new(
        "gap",
        OpKind::Pool {
            kind: PoolKind::GlobalAvg,
            kernel: (1, 1),
            stride: (1, 1),
        },
        x,
    );
    let gap_out = gap.output();
    layers.push(gap);
    layers.push(Layer::dense("fc1000", gap_out, 1000));

    ModelSpec {
        graph: ModelGraph::new("googlenet", layers),
        qos_ms: 15.0,
        class: WorkloadClass::Medium,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_count_matches_architecture() {
        let m = googlenet();
        let convs = m
            .graph
            .layers
            .iter()
            .filter(|l| matches!(l.op, OpKind::Conv2d { .. }))
            .count();
        // Stem: 3 convs; each of 9 inception cells: 6 convs.
        assert_eq!(convs, 3 + 9 * 6);
    }

    #[test]
    fn total_flops_near_published() {
        // Published: ~3 GFLOPs (1.5 GMACs).
        let g = googlenet().graph.total_flops() / 1e9;
        assert!((2.0..=4.5).contains(&g), "got {g} GFLOPs");
    }

    #[test]
    fn concatenated_channels_are_correct() {
        // Inception 5b output must be 1024 channels (the classifier input).
        let m = googlenet();
        let fc = m.graph.layers.last().unwrap();
        assert_eq!(fc.input.c, 1024);
    }

    #[test]
    fn contains_fig9_example_layer() {
        // The paper's Fig. 9 walks through conv Hin=Win=7, Cin=832,
        // Cout=384, 1x1 — inception 5b's first branch.
        let m = googlenet();
        let found = m.graph.layers.iter().any(|l| {
            matches!(
                l.op,
                OpKind::Conv2d {
                    in_ch: 832,
                    out_ch: 384,
                    kernel: (1, 1),
                    ..
                }
            ) && l.input.h == 7
        });
        assert!(found, "Fig. 9 exemplar layer missing from GoogLeNet");
    }
}
