//! BERT-Large (Devlin et al., 2019) encoder at sequence length 384 (the
//! MLPerf SQuAD configuration).

use veltair_tensor::{ActKind, FeatureMap, Layer, ModelGraph, OpKind};

use crate::catalog::{ModelSpec, WorkloadClass};

/// Hidden width of BERT-Large.
const HIDDEN: usize = 1024;
/// Attention heads.
const HEADS: usize = 16;
/// Per-head dimension.
const HEAD_DIM: usize = HIDDEN / HEADS;
/// Feed-forward inner width.
const FFN: usize = 4096;
/// Encoder layer count.
const LAYERS: usize = 24;
/// MLPerf SQuAD sequence length.
const SEQ: usize = 384;

/// Appends one transformer encoder layer.
fn encoder_layer(layers: &mut Vec<Layer>, idx: usize) {
    let x = FeatureMap::seq(SEQ, HIDDEN);
    let n = |s: &str| format!("l{idx}_{s}");

    // Self-attention projections.
    layers.push(Layer::dense(n("q"), x, HIDDEN));
    layers.push(Layer::dense(n("k"), x, HIDDEN));
    layers.push(Layer::dense(n("v"), x, HIDDEN));
    // Scores: per-head (SEQ x HEAD_DIM) x (HEAD_DIM x SEQ).
    let scores = Layer::new(
        n("scores"),
        OpKind::BatchedMatMul {
            batch: HEADS,
            m: SEQ,
            k: HEAD_DIM,
            n: SEQ,
        },
        x,
    );
    let scores_out = scores.output();
    layers.push(scores);
    layers.push(Layer::new(n("softmax"), OpKind::Softmax, scores_out));
    // Context: per-head (SEQ x SEQ) x (SEQ x HEAD_DIM).
    layers.push(Layer::new(
        n("context"),
        OpKind::BatchedMatMul {
            batch: HEADS,
            m: SEQ,
            k: SEQ,
            n: HEAD_DIM,
        },
        scores_out,
    ));
    // Output projection + residual + layer norm.
    layers.push(Layer::dense(n("attn_out"), x, HIDDEN));
    layers.push(Layer::new(n("attn_add"), OpKind::EltwiseAdd, x));
    layers.push(Layer::new(n("attn_ln"), OpKind::LayerNorm, x));

    // Feed-forward network.
    let ffn_mid = Layer::dense(n("ffn1"), x, FFN);
    let mid = ffn_mid.output();
    layers.push(ffn_mid);
    layers.push(Layer::activation(n("gelu"), mid, ActKind::Gelu));
    layers.push(Layer::dense(n("ffn2"), mid, HIDDEN));
    layers.push(Layer::new(n("ffn_add"), OpKind::EltwiseAdd, x));
    layers.push(Layer::new(n("ffn_ln"), OpKind::LayerNorm, x));
}

/// Builds the BERT-Large encoder stack plus the SQuAD span head.
#[must_use]
pub fn bert_large() -> ModelSpec {
    let mut layers = Vec::new();
    for i in 0..LAYERS {
        encoder_layer(&mut layers, i);
    }
    // SQuAD head: start/end logits per token.
    layers.push(Layer::dense("squad_head", FeatureMap::seq(SEQ, HIDDEN), 2));

    ModelSpec {
        graph: ModelGraph::new("bert_large", layers),
        qos_ms: 130.0,
        class: WorkloadClass::Heavy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_flops_near_published() {
        // Published: ~250 GFLOPs for BERT-Large at sequence length 384.
        let g = bert_large().graph.total_flops() / 1e9;
        assert!((180.0..=320.0).contains(&g), "got {g} GFLOPs");
    }

    #[test]
    fn weights_near_published() {
        // Encoder stack holds ~300 M of BERT-Large's 340 M parameters.
        let mb = bert_large().graph.total_weight_bytes() / 1e6;
        assert!((1000.0..=1400.0).contains(&mb), "got {mb} MB fp32");
    }

    #[test]
    fn gemm_structure_per_layer() {
        let m = bert_large();
        let dense = m
            .graph
            .layers
            .iter()
            .filter(|l| matches!(l.op, OpKind::Dense { .. }))
            .count();
        // 6 dense per encoder layer + the SQuAD head.
        assert_eq!(dense, LAYERS * 6 + 1);
        let bmm = m
            .graph
            .layers
            .iter()
            .filter(|l| matches!(l.op, OpKind::BatchedMatMul { .. }))
            .count();
        assert_eq!(bmm, LAYERS * 2);
    }

    #[test]
    fn attention_flops_scale_quadratically_with_seq() {
        let m = bert_large();
        let scores = m
            .graph
            .layers
            .iter()
            .find(|l| l.name == "l0_scores")
            .unwrap();
        assert_eq!(
            scores.flops(),
            2.0 * HEADS as f64 * (SEQ * SEQ * HEAD_DIM) as f64
        );
    }
}
