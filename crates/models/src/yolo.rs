//! Tiny-YOLOv2 (Redmon & Farhadi, CVPR 2017) at 416x416.

use veltair_tensor::{ActKind, FeatureMap, Layer, ModelGraph, OpKind, PoolKind};

use crate::catalog::{ModelSpec, WorkloadClass};

fn conv_bn_leaky(
    layers: &mut Vec<Layer>,
    name: &str,
    input: FeatureMap,
    out_ch: usize,
    kernel: usize,
) -> FeatureMap {
    let pad = kernel / 2;
    let conv = Layer::conv2d(name, input, out_ch, (kernel, kernel), (1, 1), (pad, pad));
    let out = conv.output();
    layers.push(conv);
    layers.push(Layer::new(format!("{name}_bn"), OpKind::BatchNorm, out));
    // Leaky ReLU costs the same as ReLU6 in our accounting.
    layers.push(Layer::activation(
        format!("{name}_act"),
        out,
        ActKind::Relu6,
    ));
    out
}

fn max_pool2(layers: &mut Vec<Layer>, name: &str, input: FeatureMap) -> FeatureMap {
    let pool = Layer::new(
        name,
        OpKind::Pool {
            kind: PoolKind::Max,
            kernel: (2, 2),
            stride: (2, 2),
        },
        input,
    );
    let out = pool.output();
    layers.push(pool);
    out
}

/// Builds Tiny-YOLOv2: nine convolutions with interleaved 2x2 max pools.
#[must_use]
pub fn tiny_yolo_v2() -> ModelSpec {
    let mut layers = Vec::new();
    let mut x = FeatureMap::nchw(1, 3, 416, 416);
    let channels = [16, 32, 64, 128, 256, 512];
    for (i, c) in channels.into_iter().enumerate() {
        x = conv_bn_leaky(&mut layers, &format!("conv{}", i + 1), x, c, 3);
        if i < 5 {
            x = max_pool2(&mut layers, &format!("pool{}", i + 1), x);
        }
    }
    // Conv 6's pool is stride-1 in the reference net; approximate by
    // keeping the 13x13 grid from here on.
    let x = FeatureMap::nchw(1, x.c, 13, 13);
    let x = conv_bn_leaky(&mut layers, "conv7", x, 1024, 3);
    let x = conv_bn_leaky(&mut layers, "conv8", x, 1024, 3);
    // Detection head: 1x1 conv to 125 channels (5 anchors x 25).
    let head = Layer::conv2d("conv9_det", x, 125, (1, 1), (1, 1), (0, 0));
    layers.push(head);

    ModelSpec {
        graph: ModelGraph::new("tiny_yolo_v2", layers),
        qos_ms: 10.0,
        class: WorkloadClass::Light,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_count_is_nine() {
        let m = tiny_yolo_v2();
        let convs = m
            .graph
            .layers
            .iter()
            .filter(|l| matches!(l.op, OpKind::Conv2d { .. }))
            .count();
        assert_eq!(convs, 9);
    }

    #[test]
    fn total_flops_near_published() {
        // Published: ~7 GFLOPs (3.5 GMACs) at 416x416.
        let g = tiny_yolo_v2().graph.total_flops() / 1e9;
        assert!((4.0..=9.0).contains(&g), "got {g} GFLOPs");
    }

    #[test]
    fn detection_grid_is_13x13() {
        let m = tiny_yolo_v2();
        let head = m.graph.layers.last().unwrap();
        assert_eq!(head.output().h, 13);
        assert_eq!(head.output().c, 125);
    }
}
