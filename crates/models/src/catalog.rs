//! The evaluated model catalog (paper Table 2).

use serde::{Deserialize, Serialize};
use veltair_tensor::ModelGraph;

/// Workload weight class from the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadClass {
    /// Small models with a 10 ms QoS target.
    Light,
    /// Mid-size classifiers with a 15 ms QoS target.
    Medium,
    /// Large detection / NMT models (100-130 ms QoS).
    Heavy,
}

impl std::fmt::Display for WorkloadClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            WorkloadClass::Light => "Light",
            WorkloadClass::Medium => "Medium",
            WorkloadClass::Heavy => "Heavy",
        };
        f.write_str(s)
    }
}

/// A model plus its serving contract.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// The layer graph.
    pub graph: ModelGraph,
    /// Latency QoS target in milliseconds (MLPerf server guidance).
    pub qos_ms: f64,
    /// Workload weight class.
    pub class: WorkloadClass,
}

impl ModelSpec {
    /// QoS target in seconds.
    #[must_use]
    pub fn qos_s(&self) -> f64 {
        self.qos_ms * 1e-3
    }

    /// Model name shorthand.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.graph.name
    }
}

/// All seven evaluated models, in Table 2 order.
#[must_use]
pub fn all_models() -> Vec<ModelSpec> {
    vec![
        crate::resnet::resnet50(),
        crate::googlenet::googlenet(),
        crate::efficientnet::efficientnet_b0(),
        crate::mobilenet::mobilenet_v2(),
        crate::ssd::ssd_resnet34(),
        crate::yolo::tiny_yolo_v2(),
        crate::bert::bert_large(),
    ]
}

/// Looks a model up by its canonical name.
#[must_use]
pub fn by_name(name: &str) -> Option<ModelSpec> {
    all_models().into_iter().find(|m| m.graph.name == name)
}

/// Models of one class, in catalog order.
#[must_use]
pub fn by_class(class: WorkloadClass) -> Vec<ModelSpec> {
    all_models()
        .into_iter()
        .filter(|m| m.class == class)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_table_2() {
        let all = all_models();
        assert_eq!(all.len(), 7);
        let q = |n: &str| by_name(n).unwrap();
        assert_eq!(q("resnet50").qos_ms, 15.0);
        assert_eq!(q("googlenet").qos_ms, 15.0);
        assert_eq!(q("efficientnet_b0").qos_ms, 10.0);
        assert_eq!(q("mobilenet_v2").qos_ms, 10.0);
        assert_eq!(q("ssd_resnet34").qos_ms, 100.0);
        assert_eq!(q("tiny_yolo_v2").qos_ms, 10.0);
        assert_eq!(q("bert_large").qos_ms, 130.0);
    }

    #[test]
    fn class_partition_is_total() {
        let l = by_class(WorkloadClass::Light).len();
        let m = by_class(WorkloadClass::Medium).len();
        let h = by_class(WorkloadClass::Heavy).len();
        assert_eq!(l + m + h, 7);
        assert_eq!(l, 3);
        assert_eq!(m, 2);
        assert_eq!(h, 2);
    }

    #[test]
    fn unknown_model_is_none() {
        assert!(by_name("alexnet").is_none());
    }

    #[test]
    fn flop_ordering_matches_classes() {
        // Every heavy model out-computes every light model by a wide margin.
        let lights = by_class(WorkloadClass::Light);
        let heavies = by_class(WorkloadClass::Heavy);
        let max_light = lights
            .iter()
            .map(|m| m.graph.total_flops())
            .fold(0.0, f64::max);
        let min_heavy = heavies
            .iter()
            .map(|m| m.graph.total_flops())
            .fold(f64::INFINITY, f64::min);
        assert!(min_heavy > 5.0 * max_light);
    }
}
