//! ResNet-50 (He et al., CVPR 2016) at 224x224.

use veltair_tensor::{ActKind, FeatureMap, Layer, ModelGraph, OpKind, PoolKind};

use crate::catalog::{ModelSpec, WorkloadClass};

/// Appends `conv + bn + relu` and returns the conv's output map.
fn conv_bn_relu(
    layers: &mut Vec<Layer>,
    name: &str,
    input: FeatureMap,
    out_ch: usize,
    kernel: usize,
    stride: usize,
    relu: bool,
) -> FeatureMap {
    let pad = kernel / 2;
    let conv = Layer::conv2d(
        name,
        input,
        out_ch,
        (kernel, kernel),
        (stride, stride),
        (pad, pad),
    );
    let out = conv.output();
    layers.push(conv);
    layers.push(Layer::new(format!("{name}_bn"), OpKind::BatchNorm, out));
    if relu {
        layers.push(Layer::activation(
            format!("{name}_relu"),
            out,
            ActKind::Relu,
        ));
    }
    out
}

/// Appends one bottleneck block (1x1 reduce, 3x3, 1x1 expand, residual add).
fn bottleneck(
    layers: &mut Vec<Layer>,
    name: &str,
    input: FeatureMap,
    mid_ch: usize,
    out_ch: usize,
    stride: usize,
    downsample: bool,
) -> FeatureMap {
    let a = conv_bn_relu(
        layers,
        &format!("{name}_2a"),
        input,
        mid_ch,
        1,
        stride,
        true,
    );
    let b = conv_bn_relu(layers, &format!("{name}_2b"), a, mid_ch, 3, 1, true);
    let c = conv_bn_relu(layers, &format!("{name}_2c"), b, out_ch, 1, 1, false);
    if downsample {
        conv_bn_relu(
            layers,
            &format!("{name}_1"),
            input,
            out_ch,
            1,
            stride,
            false,
        );
    }
    layers.push(Layer::new(format!("{name}_add"), OpKind::EltwiseAdd, c));
    layers.push(Layer::activation(format!("{name}_relu"), c, ActKind::Relu));
    c
}

/// Builds ResNet-50: 53 convolutions plus the classifier GEMM, with all
/// batch-norm / ReLU / residual epilogues present for fusion.
#[must_use]
pub fn resnet50() -> ModelSpec {
    let mut layers = Vec::new();
    let input = FeatureMap::nchw(1, 3, 224, 224);
    // Stem: 7x7/2 conv + 3x3/2 max pool.
    let stem = conv_bn_relu(&mut layers, "conv1", input, 64, 7, 2, true);
    let pool = Layer::new(
        "pool1",
        OpKind::Pool {
            kind: PoolKind::Max,
            kernel: (3, 3),
            stride: (2, 2),
        },
        stem,
    );
    let mut x = pool.output();
    layers.push(pool);

    let stages: [(usize, usize, usize, usize); 4] = [
        // (blocks, mid channels, out channels, first stride)
        (3, 64, 256, 1),
        (4, 128, 512, 2),
        (6, 256, 1024, 2),
        (3, 512, 2048, 2),
    ];
    for (si, (blocks, mid, out, stride)) in stages.into_iter().enumerate() {
        for b in 0..blocks {
            let name = format!("res{}{}", si + 2, (b'a' + b as u8) as char);
            let s = if b == 0 { stride } else { 1 };
            x = bottleneck(&mut layers, &name, x, mid, out, s, b == 0);
        }
    }

    // Head: global average pool + fully connected classifier.
    let gap = Layer::new(
        "gap",
        OpKind::Pool {
            kind: PoolKind::GlobalAvg,
            kernel: (1, 1),
            stride: (1, 1),
        },
        x,
    );
    let gap_out = gap.output();
    layers.push(gap);
    layers.push(Layer::dense("fc1000", gap_out, 1000));

    ModelSpec {
        graph: ModelGraph::new("resnet50", layers),
        qos_ms: 15.0,
        class: WorkloadClass::Medium,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_count_matches_architecture() {
        let m = resnet50();
        let convs = m
            .graph
            .layers
            .iter()
            .filter(|l| matches!(l.op, OpKind::Conv2d { .. }))
            .count();
        // 1 stem + 16 blocks x 3 + 4 downsample projections = 53.
        assert_eq!(convs, 53);
        assert_eq!(m.graph.compute_layer_count(), 54);
    }

    #[test]
    fn total_flops_near_published() {
        // Published: ~8.2 GFLOPs (4.1 GMACs) for 224x224 inference.
        let g = resnet50().graph.total_flops() / 1e9;
        assert!((6.0..=10.0).contains(&g), "got {g} GFLOPs");
    }

    #[test]
    fn weights_near_published() {
        // Published: ~25.6 M parameters -> ~102 MB in FP32.
        let mb = resnet50().graph.total_weight_bytes() / 1e6;
        assert!((90.0..=115.0).contains(&mb), "got {mb} MB");
    }

    #[test]
    fn spatial_pyramid_is_correct() {
        let m = resnet50();
        // Last conv operates on a 7x7 map with 2048 output channels.
        let last_conv = m
            .graph
            .layers
            .iter()
            .rfind(|l| matches!(l.op, OpKind::Conv2d { .. }))
            .unwrap();
        assert_eq!(last_conv.output().h, 7);
        assert_eq!(last_conv.output().c, 2048);
    }

    #[test]
    fn fusion_collapses_epilogues() {
        let m = resnet50();
        let units = m.graph.fused_units();
        // 53 convs + pool + gap + fc = 56 scheduling units.
        assert_eq!(units.len(), 56);
    }
}
