//! EfficientNet-B0 (Tan & Le, ICML 2019) at 224x224.

use veltair_tensor::{ActKind, FeatureMap, Layer, ModelGraph, OpKind, PoolKind};

use crate::catalog::{ModelSpec, WorkloadClass};

fn conv_bn_swish(
    layers: &mut Vec<Layer>,
    name: &str,
    input: FeatureMap,
    out_ch: usize,
    kernel: usize,
    stride: usize,
    act: bool,
) -> FeatureMap {
    let pad = kernel / 2;
    let conv = Layer::conv2d(
        name,
        input,
        out_ch,
        (kernel, kernel),
        (stride, stride),
        (pad, pad),
    );
    let out = conv.output();
    layers.push(conv);
    layers.push(Layer::new(format!("{name}_bn"), OpKind::BatchNorm, out));
    if act {
        layers.push(Layer::activation(
            format!("{name}_swish"),
            out,
            ActKind::Swish,
        ));
    }
    out
}

/// Squeeze-and-excitation bottleneck: GAP + two tiny dense layers. The
/// per-channel rescale is folded into the following activation (its FLOPs
/// are negligible at < 0.1 % of the block).
fn squeeze_excite(layers: &mut Vec<Layer>, name: &str, input: FeatureMap, se_ch: usize) {
    let gap = Layer::new(
        format!("{name}_se_gap"),
        OpKind::Pool {
            kind: PoolKind::GlobalAvg,
            kernel: (1, 1),
            stride: (1, 1),
        },
        input,
    );
    let squeezed = gap.output();
    layers.push(gap);
    let reduce = Layer::dense(format!("{name}_se_fc1"), squeezed, se_ch);
    let reduced = reduce.output();
    layers.push(reduce);
    layers.push(Layer::dense(format!("{name}_se_fc2"), reduced, input.c));
}

/// Appends one MBConv block and returns its output map.
#[allow(clippy::too_many_arguments)]
fn mbconv(
    layers: &mut Vec<Layer>,
    name: &str,
    input: FeatureMap,
    expand: usize,
    out_ch: usize,
    kernel: usize,
    stride: usize,
) -> FeatureMap {
    let mid = input.c * expand;
    let mut x = input;
    if expand != 1 {
        x = conv_bn_swish(layers, &format!("{name}_exp"), x, mid, 1, 1, true);
    }
    let pad = kernel / 2;
    let dw = Layer::dwconv2d(
        format!("{name}_dw"),
        x,
        (kernel, kernel),
        (stride, stride),
        (pad, pad),
    );
    let dw_out = dw.output();
    layers.push(dw);
    layers.push(Layer::new(
        format!("{name}_dw_bn"),
        OpKind::BatchNorm,
        dw_out,
    ));
    layers.push(Layer::activation(
        format!("{name}_dw_swish"),
        dw_out,
        ActKind::Swish,
    ));
    squeeze_excite(layers, name, dw_out, (input.c / 4).max(1));
    let out = conv_bn_swish(layers, &format!("{name}_proj"), dw_out, out_ch, 1, 1, false);
    if stride == 1 && input.c == out_ch {
        layers.push(Layer::new(format!("{name}_add"), OpKind::EltwiseAdd, out));
    }
    out
}

/// Builds EfficientNet-B0 with the standard block table.
#[must_use]
pub fn efficientnet_b0() -> ModelSpec {
    let mut layers = Vec::new();
    let input = FeatureMap::nchw(1, 3, 224, 224);
    let mut x = conv_bn_swish(&mut layers, "stem", input, 32, 3, 2, true);

    // (expansion, out channels, repeats, first stride, kernel)
    let table: [(usize, usize, usize, usize, usize); 7] = [
        (1, 16, 1, 1, 3),
        (6, 24, 2, 2, 3),
        (6, 40, 2, 2, 5),
        (6, 80, 3, 2, 3),
        (6, 112, 3, 1, 5),
        (6, 192, 4, 2, 5),
        (6, 320, 1, 1, 3),
    ];
    for (bi, (t, c, n, s, k)) in table.into_iter().enumerate() {
        for r in 0..n {
            let stride = if r == 0 { s } else { 1 };
            x = mbconv(&mut layers, &format!("mb{bi}_{r}"), x, t, c, k, stride);
        }
    }

    let x = conv_bn_swish(&mut layers, "head", x, 1280, 1, 1, true);
    let gap = Layer::new(
        "gap",
        OpKind::Pool {
            kind: PoolKind::GlobalAvg,
            kernel: (1, 1),
            stride: (1, 1),
        },
        x,
    );
    let gap_out = gap.output();
    layers.push(gap);
    layers.push(Layer::dense("fc1000", gap_out, 1000));

    ModelSpec {
        graph: ModelGraph::new("efficientnet_b0", layers),
        qos_ms: 10.0,
        class: WorkloadClass::Light,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_flops_near_published() {
        // Published: ~0.78 GFLOPs (390 MMACs x 2).
        let g = efficientnet_b0().graph.total_flops() / 1e9;
        assert!((0.5..=1.2).contains(&g), "got {g} GFLOPs");
    }

    #[test]
    fn block_count_matches_table() {
        let m = efficientnet_b0();
        let dw = m
            .graph
            .layers
            .iter()
            .filter(|l| matches!(l.op, OpKind::Conv2d { groups, .. } if groups > 1))
            .count();
        assert_eq!(dw, 1 + 2 + 2 + 3 + 3 + 4 + 1);
    }

    #[test]
    fn squeeze_excite_layers_present() {
        let m = efficientnet_b0();
        let se = m
            .graph
            .layers
            .iter()
            .filter(|l| l.name.contains("_se_fc"))
            .count();
        assert_eq!(se, 2 * 16, "two dense layers per MBConv block");
    }

    #[test]
    fn five_by_five_kernels_present() {
        let m = efficientnet_b0();
        assert!(m
            .graph
            .layers
            .iter()
            .any(|l| matches!(l.op, OpKind::Conv2d { kernel: (5, 5), .. })));
    }
}
