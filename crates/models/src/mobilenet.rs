//! MobileNet-V2 (Sandler et al., CVPR 2018) at 224x224.

use veltair_tensor::{ActKind, FeatureMap, Layer, ModelGraph, OpKind, PoolKind};

use crate::catalog::{ModelSpec, WorkloadClass};

fn conv_bn_act(
    layers: &mut Vec<Layer>,
    name: &str,
    input: FeatureMap,
    out_ch: usize,
    kernel: usize,
    stride: usize,
    act: Option<ActKind>,
) -> FeatureMap {
    let pad = kernel / 2;
    let conv = Layer::conv2d(
        name,
        input,
        out_ch,
        (kernel, kernel),
        (stride, stride),
        (pad, pad),
    );
    let out = conv.output();
    layers.push(conv);
    layers.push(Layer::new(format!("{name}_bn"), OpKind::BatchNorm, out));
    if let Some(a) = act {
        layers.push(Layer::activation(format!("{name}_act"), out, a));
    }
    out
}

fn dwconv_bn_act(
    layers: &mut Vec<Layer>,
    name: &str,
    input: FeatureMap,
    kernel: usize,
    stride: usize,
) -> FeatureMap {
    let pad = kernel / 2;
    let conv = Layer::dwconv2d(name, input, (kernel, kernel), (stride, stride), (pad, pad));
    let out = conv.output();
    layers.push(conv);
    layers.push(Layer::new(format!("{name}_bn"), OpKind::BatchNorm, out));
    layers.push(Layer::activation(
        format!("{name}_act"),
        out,
        ActKind::Relu6,
    ));
    out
}

/// Appends one inverted-residual block and returns its output map.
fn inverted_residual(
    layers: &mut Vec<Layer>,
    name: &str,
    input: FeatureMap,
    expand: usize,
    out_ch: usize,
    stride: usize,
) -> FeatureMap {
    let mid = input.c * expand;
    let mut x = input;
    if expand != 1 {
        x = conv_bn_act(
            layers,
            &format!("{name}_exp"),
            x,
            mid,
            1,
            1,
            Some(ActKind::Relu6),
        );
    }
    let x = dwconv_bn_act(layers, &format!("{name}_dw"), x, 3, stride);
    let out = conv_bn_act(layers, &format!("{name}_proj"), x, out_ch, 1, 1, None);
    if stride == 1 && input.c == out_ch {
        layers.push(Layer::new(format!("{name}_add"), OpKind::EltwiseAdd, out));
    }
    out
}

/// Builds MobileNet-V2 with the standard `(t, c, n, s)` block table.
#[must_use]
pub fn mobilenet_v2() -> ModelSpec {
    let mut layers = Vec::new();
    let input = FeatureMap::nchw(1, 3, 224, 224);
    let mut x = conv_bn_act(&mut layers, "stem", input, 32, 3, 2, Some(ActKind::Relu6));

    // (expansion, out channels, repeats, first stride)
    let table: [(usize, usize, usize, usize); 7] = [
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    for (bi, (t, c, n, s)) in table.into_iter().enumerate() {
        for r in 0..n {
            let stride = if r == 0 { s } else { 1 };
            x = inverted_residual(&mut layers, &format!("b{bi}_{r}"), x, t, c, stride);
        }
    }

    let x = conv_bn_act(&mut layers, "head", x, 1280, 1, 1, Some(ActKind::Relu6));
    let gap = Layer::new(
        "gap",
        OpKind::Pool {
            kind: PoolKind::GlobalAvg,
            kernel: (1, 1),
            stride: (1, 1),
        },
        x,
    );
    let gap_out = gap.output();
    layers.push(gap);
    layers.push(Layer::dense("fc1000", gap_out, 1000));

    ModelSpec {
        graph: ModelGraph::new("mobilenet_v2", layers),
        qos_ms: 10.0,
        class: WorkloadClass::Light,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_flops_near_published() {
        // Published: ~0.6 GFLOPs (300 MMACs x 2).
        let g = mobilenet_v2().graph.total_flops() / 1e9;
        assert!((0.4..=0.9).contains(&g), "got {g} GFLOPs");
    }

    #[test]
    fn depthwise_layers_present() {
        let m = mobilenet_v2();
        let dw = m
            .graph
            .layers
            .iter()
            .filter(|l| matches!(l.op, OpKind::Conv2d { groups, .. } if groups > 1))
            .count();
        // One depthwise conv per inverted-residual block: 1+2+3+4+3+3+1.
        assert_eq!(dw, 17);
    }

    #[test]
    fn final_features_are_1280() {
        let m = mobilenet_v2();
        assert_eq!(m.graph.layers.last().unwrap().input.c, 1280);
    }

    #[test]
    fn residual_adds_only_on_matching_blocks() {
        let m = mobilenet_v2();
        let adds = m
            .graph
            .layers
            .iter()
            .filter(|l| matches!(l.op, OpKind::EltwiseAdd))
            .count();
        // Repeat blocks with stride 1 and equal channels: (2-1)+(3-1)+(4-1)+(3-1)+(3-1)+(1-1)... per table.
        assert_eq!(adds, 1 + 2 + 3 + 2 + 2, "inverted residual skip count");
    }
}
