//! MLPerf-style DNN model zoo for the VELTAIR reproduction.
//!
//! Builds architecturally faithful layer sequences for the seven networks of
//! the paper's Table 2, each tagged with its MLPerf-guided QoS target and
//! workload class:
//!
//! | Category | Class | Model | QoS (ms) |
//! |---|---|---|---|
//! | Image classification | Medium | ResNet-50 | 15 |
//! | Image classification | Medium | GoogLeNet | 15 |
//! | Image classification | Light | EfficientNet-B0 | 10 |
//! | Image classification | Light | MobileNet-V2 | 10 |
//! | Object detection | Heavy | SSD (ResNet-34, 1200^2) | 100 |
//! | Object detection | Light | Tiny-YOLOv2 | 10 |
//! | NMT | Heavy | BERT-Large (seq 384) | 130 |
//!
//! The graphs include the batch-norm / activation / residual epilogues so
//! that the compiler's fusion patterns (`conv-bn-relu`, ...) fire exactly as
//! they do in TVM. EfficientNet's squeeze-excite blocks are represented by
//! their two bottleneck dense layers (the per-channel rescale is folded into
//! the following activation; its FLOP contribution is < 0.1 %).
//!
//! # Example
//!
//! ```
//! let resnet = veltair_models::resnet50();
//! assert_eq!(resnet.graph.name, "resnet50");
//! // 53 convolutions + the classifier GEMM.
//! assert_eq!(resnet.graph.compute_layer_count(), 54);
//! ```

pub mod bert;
pub mod catalog;
pub mod efficientnet;
pub mod googlenet;
pub mod mobilenet;
pub mod resnet;
pub mod ssd;
pub mod yolo;

pub use bert::bert_large;
pub use catalog::{all_models, by_name, ModelSpec, WorkloadClass};
pub use efficientnet::efficientnet_b0;
pub use googlenet::googlenet;
pub use mobilenet::mobilenet_v2;
pub use resnet::resnet50;
pub use ssd::ssd_resnet34;
pub use yolo::tiny_yolo_v2;
