//! Deterministic flight recorder for the VELTAIR serving stack:
//! query-lifecycle tracing, a metrics registry, and SLO-violation
//! attribution across the per-node driver and the fleet coordinator.
//!
//! The crate sits *below* the scheduler and the fleet in the dependency
//! graph — both emit through the [`TraceSink`] trait defined here — and
//! knows nothing about either: events carry integer model/node ids, and
//! the [`Collector`] that merges them owns the name tables.
//!
//! # Determinism contract
//!
//! Every event carries a *virtual-time* timestamp, and the merged stream
//! produced by [`Collector::log`] is ordered by
//! `(timestamp, track index)` with a stable tie-break on emission order.
//! Per-node sinks are drained at coordinator-chosen points in node-index
//! order, so the merged trace — and everything derived from it: the
//! [`TelemetrySnapshot`], the Chrome-JSON export, the
//! [`explain`](TraceLog::explain) attribution — is **bit-identical**
//! across sequential and work-stealing-parallel fleet stepping and
//! across the scan and indexed routing paths. Instrumentation never
//! perturbs simulation results: emission only *reads* scheduler state,
//! and the extra solo ratings recorded for attribution are computed from
//! pure functions.
//!
//! # Zero overhead when off
//!
//! Drivers hold an `Option<Box<dyn TraceSink>>` that defaults to `None`;
//! the hot path pays a single branch. [`NullSink`] reports
//! [`is_enabled`](TraceSink::is_enabled)` == false`, so attaching it
//! disables event construction entirely — the benchmark-able "sink
//! attached but recording nothing" configuration.

mod collector;
mod event;
mod histogram;
mod registry;
mod sink;
mod trace;

pub use collector::{Collector, TraceConfig};
pub use event::{TraceEvent, TraceEventKind};
pub use histogram::LatencyHistogram;
pub use registry::{EventCounts, TelemetrySnapshot, ViolationCell, FRONT_DOOR_CLASS};
pub use sink::{NullSink, RecorderSink, TraceSink};
pub use trace::{QueryTerminal, SloAttribution, TraceLog};
