//! The emission seam: [`TraceSink`] and its two stock implementations.

use std::collections::VecDeque;

use crate::event::TraceEventKind;

/// Where a driver or coordinator writes lifecycle events.
///
/// Implementations must be `Send` — the fleet's work-stealing parallel
/// stepper moves node drivers (and therefore their sinks) across worker
/// threads. They need not be `Sync`: each sink is owned by exactly one
/// emitter.
pub trait TraceSink: std::fmt::Debug + Send {
    /// Whether emitters should construct events at all. Emission sites
    /// cache this at attach time, so a sink that returns `false`
    /// ([`NullSink`]) costs one predictable branch on the hot path —
    /// indistinguishable from having no sink attached.
    fn is_enabled(&self) -> bool {
        true
    }

    /// Records one event at virtual time `at_s`.
    fn record(&mut self, at_s: f64, kind: TraceEventKind);

    /// Moves every buffered event into `out` (oldest first), leaving the
    /// sink empty. Collectors call this at deterministic pull points.
    fn drain(&mut self, out: &mut Vec<(f64, TraceEventKind)>);

    /// Events discarded so far by a bounded (flight-recorder) buffer.
    fn dropped(&self) -> u64 {
        0
    }
}

/// A sink that records nothing and reports itself disabled — the
/// "telemetry compiled in, switched off" configuration the overhead
/// benchmark pins against the no-sink baseline.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn is_enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _at_s: f64, _kind: TraceEventKind) {}

    fn drain(&mut self, _out: &mut Vec<(f64, TraceEventKind)>) {}
}

/// The standard buffering sink: an append-only buffer, optionally
/// bounded into a flight-recorder ring that keeps the most recent
/// `capacity` events and counts what it dropped.
#[derive(Debug, Default)]
pub struct RecorderSink {
    buf: VecDeque<(f64, TraceEventKind)>,
    capacity: Option<usize>,
    dropped: u64,
}

impl RecorderSink {
    /// An unbounded recorder: keeps everything until drained.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A bounded flight recorder keeping the most recent `capacity`
    /// events between drains; older events are dropped oldest-first and
    /// counted in [`TraceSink::dropped`]. A zero capacity keeps nothing.
    #[must_use]
    pub fn bounded(capacity: usize) -> Self {
        Self {
            buf: VecDeque::with_capacity(capacity.min(1024)),
            capacity: Some(capacity),
            dropped: 0,
        }
    }

    /// Events currently buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl TraceSink for RecorderSink {
    fn record(&mut self, at_s: f64, kind: TraceEventKind) {
        if let Some(cap) = self.capacity {
            while self.buf.len() >= cap.max(1) {
                self.buf.pop_front();
                self.dropped += 1;
            }
            if cap == 0 {
                self.dropped += 1;
                return;
            }
        }
        self.buf.push_back((at_s, kind));
    }

    fn drain(&mut self, out: &mut Vec<(f64, TraceEventKind)>) {
        out.extend(self.buf.drain(..));
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_ring_keeps_newest_and_counts_drops() {
        let mut sink = RecorderSink::bounded(2);
        for i in 0..5u64 {
            sink.record(i as f64, TraceEventKind::NodeJoined { node: i as u32 });
        }
        assert_eq!(sink.dropped(), 3);
        let mut out = Vec::new();
        sink.drain(&mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, 3.0);
        assert_eq!(out[1].0, 4.0);
        assert!(sink.is_empty());
    }

    #[test]
    fn null_sink_is_disabled_and_silent() {
        let mut sink = NullSink;
        assert!(!sink.is_enabled());
        sink.record(0.0, TraceEventKind::ScaleOut { added: 1 });
        let mut out = Vec::new();
        sink.drain(&mut out);
        assert!(out.is_empty());
    }
}
