//! Log-bucketed latency histograms: constant-size, mergeable, and
//! accurate to one bucket width at every percentile.

use serde::{Deserialize, Serialize};

/// Lower edge of the first log bucket, seconds (10 µs — well under any
/// layer's execution time).
const LO_S: f64 = 1e-5;

/// Geometric bucket growth factor: `2^(1/4)`, i.e. four buckets per
/// octave, ~19 % relative width.
const GROWTH: f64 = 1.189_207_115_002_721;

/// Bucket count. Bucket 0 is the underflow bin `[0, LO_S)`; the last
/// bucket is the overflow bin. 96 buckets cover `10 µs … ~119 s`.
const BUCKETS: usize = 96;

/// A fixed-size log-bucketed latency histogram.
///
/// Bucket 0 holds `[0, 10 µs)`; bucket `b` holds
/// `[10 µs · G^(b-1), 10 µs · G^b)` with `G = 2^(1/4)`; the final
/// bucket is the overflow bin. The nearest-rank
/// [`percentile_s`](LatencyHistogram::percentile_s) reports a bucket's
/// *upper* edge, so it brackets the exact pooled-sample percentile from
/// above and is off by at most one bucket width (a factor of `G`).
///
/// Everything here is integer counts plus order-independent-enough
/// `f64` accumulators updated in the collector's deterministic absorb
/// order, so snapshots compare bit-identical across fleet step and
/// routing modes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum_s: f64,
    max_s: f64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            total: 0,
            sum_s: 0.0,
            max_s: 0.0,
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The relative width of one bucket — the guaranteed accuracy bound
    /// of [`percentile_s`](LatencyHistogram::percentile_s): the reported
    /// value `v` and the exact sample percentile `p` satisfy
    /// `p <= v <= p * relative_width()` (up to the overflow bin).
    #[must_use]
    pub fn relative_width() -> f64 {
        GROWTH
    }

    fn bucket_of(latency_s: f64) -> usize {
        if latency_s.is_nan() || latency_s < LO_S {
            // NaN and sub-LO values land in the underflow bin.
            return 0;
        }
        let b = ((latency_s / LO_S).ln() / GROWTH.ln()).floor();
        if b.is_finite() && b >= 0.0 {
            ((b as usize) + 1).min(BUCKETS - 1)
        } else {
            0
        }
    }

    fn upper_edge(bucket: usize) -> f64 {
        if bucket == 0 {
            LO_S
        } else {
            LO_S * GROWTH.powi(bucket as i32)
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency_s: f64) {
        self.counts[Self::bucket_of(latency_s)] += 1;
        self.total += 1;
        self.sum_s += latency_s.max(0.0);
        self.max_s = self.max_s.max(latency_s);
    }

    /// Samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of the recorded samples (0 when empty).
    #[must_use]
    pub fn mean_s(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_s / self.total as f64
        }
    }

    /// Largest recorded sample.
    #[must_use]
    pub fn max_s(&self) -> f64 {
        self.max_s
    }

    /// Nearest-rank percentile (`p` in `[0, 100]`), reported as the
    /// holding bucket's upper edge — an upper bound on the exact sample
    /// percentile, tight to one bucket width. The overflow bin reports
    /// the recorded maximum. Returns 0 when empty.
    #[must_use]
    pub fn percentile_s(&self, p: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let rank = ((p.clamp(0.0, 100.0) / 100.0) * self.total as f64).ceil() as u64;
        let rank = rank.max(1);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if b == BUCKETS - 1 {
                    self.max_s
                } else {
                    Self::upper_edge(b)
                };
            }
        }
        self.max_s
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_s += other.sum_s;
        self.max_s = self.max_s.max(other.max_s);
    }

    /// `(upper_edge_s, count)` for every non-empty bucket, in order —
    /// the display/export view.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(f64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| (Self::upper_edge(b), c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_brackets_exact_samples_within_one_bucket() {
        let mut h = LatencyHistogram::new();
        let mut samples: Vec<f64> = (1..=1000).map(|i| 1e-4 * (i as f64).sqrt()).collect();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_by(f64::total_cmp);
        for p in [50.0, 90.0, 95.0, 99.0] {
            let rank = ((p / 100.0) * samples.len() as f64).ceil() as usize;
            let exact = samples[rank.max(1) - 1];
            let approx = h.percentile_s(p);
            assert!(
                approx >= exact - 1e-12 && approx <= exact * LatencyHistogram::relative_width(),
                "p{p}: approx {approx} not within one bucket of exact {exact}"
            );
        }
    }

    #[test]
    fn underflow_overflow_and_merge() {
        let mut a = LatencyHistogram::new();
        a.record(0.0);
        a.record(1e-9);
        a.record(1e6);
        let mut b = LatencyHistogram::new();
        b.record(0.5);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.max_s(), 1e6);
        assert_eq!(a.percentile_s(100.0), 1e6);
        assert!(a.percentile_s(25.0) <= 1e-5 + 1e-18);
    }
}
