//! The coordinator-side collector: merges per-node sink buffers into one
//! deterministic stream and keeps the metrics registry incrementally.

use crate::event::{TraceEvent, TraceEventKind};
use crate::registry::{TelemetrySnapshot, FRONT_DOOR_CLASS};
use crate::sink::{RecorderSink, TraceSink};
use crate::trace::TraceLog;

/// Configuration of the flight recorder.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceConfig {
    /// Per-node sink bound: keep only the most recent `n` events per
    /// node between coordinator pulls (the bounded flight-recorder
    /// mode). `None` records everything.
    pub node_buffer: Option<usize>,
}

impl TraceConfig {
    /// Record everything (the default).
    #[must_use]
    pub fn unbounded() -> Self {
        Self { node_buffer: None }
    }

    /// Bounded flight-recorder mode: each node keeps only its most
    /// recent `capacity` events between coordinator pulls; older events
    /// are dropped and counted in
    /// [`TelemetrySnapshot::events_dropped`].
    #[must_use]
    pub fn flight_recorder(capacity: usize) -> Self {
        Self {
            node_buffer: Some(capacity),
        }
    }
}

/// Merges coordinator and per-node event streams deterministically and
/// maintains the [`TelemetrySnapshot`] registry as events arrive.
///
/// Owned by the fleet coordinator (or a single-machine session). Node
/// sinks are absorbed at deterministic virtual-time points in node-index
/// order; the merged log is materialized by [`Collector::log`], sorted
/// by `(virtual time, track)` with a stable tie-break on absorb order —
/// the ordering that makes traces bit-identical across fleet step and
/// routing modes.
#[derive(Debug)]
pub struct Collector {
    config: TraceConfig,
    models: Vec<String>,
    tracks: Vec<String>,
    classes: Vec<String>,
    events: Vec<TraceEvent>,
    dropped_per_track: Vec<u64>,
    snapshot: TelemetrySnapshot,
    scratch: Vec<(f64, TraceEventKind)>,
}

impl Collector {
    /// A collector over the given model-name table. Track 0 (the
    /// coordinator) is pre-registered; node tracks follow via
    /// [`Collector::register_track`].
    #[must_use]
    pub fn new(config: TraceConfig, models: Vec<String>) -> Self {
        Self {
            config,
            models,
            tracks: vec!["coordinator".to_string()],
            classes: vec!["coordinator".to_string()],
            events: Vec::new(),
            dropped_per_track: vec![0],
            snapshot: TelemetrySnapshot::default(),
            scratch: Vec::new(),
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> TraceConfig {
        self.config
    }

    /// Builds a node sink honoring the configured flight-recorder bound.
    #[must_use]
    pub fn make_sink(&self) -> RecorderSink {
        match self.config.node_buffer {
            Some(cap) => RecorderSink::bounded(cap),
            None => RecorderSink::new(),
        }
    }

    /// Registers a node track (name + node-class label, e.g.
    /// `"64c/veltair-full"`) and returns its track id.
    pub fn register_track(&mut self, name: &str, class: &str) -> u32 {
        self.tracks.push(name.to_string());
        self.classes.push(class.to_string());
        self.dropped_per_track.push(0);
        (self.tracks.len() - 1) as u32
    }

    /// Records one coordinator event (track 0) at virtual time `at_s`.
    pub fn coordinator(&mut self, at_s: f64, kind: TraceEventKind) {
        self.account(0, &kind);
        self.events.push(TraceEvent {
            at_s,
            track: 0,
            kind,
        });
    }

    /// Drains a node sink into the merged stream under `track`,
    /// rewriting driver-local query indices into fleet-wide trace ids
    /// through `map` (`map[local] == trace_id`; `None` means the local
    /// index *is* the trace id, the single-machine case).
    ///
    /// Call order is the determinism seam: the fleet pulls every node in
    /// roster order at fixed virtual-time points.
    pub fn absorb_sink(&mut self, track: u32, sink: &mut dyn TraceSink, map: Option<&[u64]>) {
        self.scratch.clear();
        sink.drain(&mut self.scratch);
        let mut drained = std::mem::take(&mut self.scratch);
        self.absorb_events(track, &mut drained, map, sink.dropped());
        self.scratch = drained;
    }

    /// Absorbs already-drained `(time, kind)` pairs under `track` — the
    /// entry point for owners that keep their sink internal (a driver
    /// hands out drained events, not the sink itself). `events` is
    /// consumed (left empty, capacity retained); `dropped` is the sink's
    /// *cumulative* drop count, which replaces — not adds to — the
    /// track's previous figure.
    pub fn absorb_events(
        &mut self,
        track: u32,
        events: &mut Vec<(f64, TraceEventKind)>,
        map: Option<&[u64]>,
        dropped: u64,
    ) {
        for (at_s, mut kind) in events.drain(..) {
            if let Some(map) = map {
                kind.remap_query(|q| map.get(q as usize).copied().unwrap_or(q));
            }
            self.account(track, &kind);
            self.events.push(TraceEvent { at_s, track, kind });
        }
        if let Some(slot) = self.dropped_per_track.get_mut(track as usize) {
            *slot = dropped;
        }
    }

    fn model_name(&self, model: u32) -> &str {
        self.models
            .get(model as usize)
            .map_or("<unknown>", String::as_str)
    }

    fn account(&mut self, track: u32, kind: &TraceEventKind) {
        self.snapshot.events_recorded += 1;
        let c = &mut self.snapshot.counts;
        match kind {
            TraceEventKind::Submitted { .. } => c.submitted += 1,
            TraceEventKind::Routed { .. } => c.routed += 1,
            TraceEventKind::Admitted { .. } => c.admitted += 1,
            TraceEventKind::Deferred { .. } => c.deferred += 1,
            TraceEventKind::Requeued { .. } => c.requeued += 1,
            TraceEventKind::Dispatched { .. } => c.dispatched += 1,
            TraceEventKind::NodeJoined { .. } => c.node_joined += 1,
            TraceEventKind::NodeStalled { .. } => c.node_stalled += 1,
            TraceEventKind::NodeRecovered { .. } => c.node_recovered += 1,
            TraceEventKind::NodeDraining { .. } => c.node_draining += 1,
            TraceEventKind::NodeKilled { .. } => c.node_killed += 1,
            TraceEventKind::NodeRetired { .. } => c.node_retired += 1,
            TraceEventKind::ScaleOut { .. } => c.scale_out += 1,
            TraceEventKind::ScaleIn { .. } => c.scale_in += 1,
            TraceEventKind::Shed { model, .. } => {
                c.shed += 1;
                let model = self.model_name(*model).to_string();
                self.snapshot
                    .violations
                    .entry(FRONT_DOOR_CLASS.to_string())
                    .or_default()
                    .entry(model)
                    .or_default()
                    .shed += 1;
            }
            TraceEventKind::Completed {
                model, latency_s, ..
            } => {
                c.completed += 1;
                let model = self.model_name(*model).to_string();
                self.snapshot.latency.record(*latency_s);
                self.snapshot
                    .per_model_latency
                    .entry(model.clone())
                    .or_default()
                    .record(*latency_s);
                let class = self
                    .classes
                    .get(track as usize)
                    .cloned()
                    .unwrap_or_else(|| "<unknown>".to_string());
                self.snapshot
                    .violations
                    .entry(class)
                    .or_default()
                    .entry(model)
                    .or_default()
                    .completed += 1;
            }
            TraceEventKind::Violated { model, .. } => {
                c.violated += 1;
                let model = self.model_name(*model).to_string();
                let class = self
                    .classes
                    .get(track as usize)
                    .cloned()
                    .unwrap_or_else(|| "<unknown>".to_string());
                self.snapshot
                    .violations
                    .entry(class)
                    .or_default()
                    .entry(model)
                    .or_default()
                    .violated += 1;
            }
        }
    }

    /// A point-in-time copy of the metrics registry.
    #[must_use]
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut s = self.snapshot.clone();
        s.events_dropped = self.dropped_per_track.iter().sum();
        s
    }

    /// Materializes the merged trace: every absorbed event, stably
    /// sorted by `(virtual time, track)` — coordinator first within an
    /// instant — plus the name tables the log renders with.
    #[must_use]
    pub fn log(&self) -> TraceLog {
        let mut events = self.events.clone();
        events.sort_by(|a, b| {
            a.at_s
                .total_cmp(&b.at_s)
                .then_with(|| a.track.cmp(&b.track))
        });
        TraceLog {
            events,
            tracks: self.tracks.clone(),
            classes: self.classes.clone(),
            models: self.models.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_orders_by_time_then_track_and_accounts() {
        let mut c = Collector::new(TraceConfig::unbounded(), vec!["m".to_string()]);
        let n0 = c.register_track("node-0", "8c/test");
        let mut sink = c.make_sink();
        sink.record(
            2.0,
            TraceEventKind::Completed {
                query: 0,
                model: 0,
                latency_s: 0.5,
                qos_s: 1.0,
            },
        );
        c.coordinator(2.0, TraceEventKind::Submitted { query: 1, model: 0 });
        c.coordinator(1.0, TraceEventKind::Submitted { query: 0, model: 0 });
        c.absorb_sink(n0, &mut sink, Some(&[7]));
        let log = c.log();
        assert_eq!(log.events.len(), 3);
        assert_eq!(log.events[0].at_s, 1.0);
        // Same instant: coordinator (track 0) precedes node tracks.
        assert_eq!(log.events[1].track, 0);
        assert_eq!(log.events[2].track, n0);
        assert_eq!(log.events[2].kind.query(), Some(7));
        let snap = c.snapshot();
        assert_eq!(snap.counts.submitted, 2);
        assert_eq!(snap.counts.completed, 1);
        assert_eq!(snap.latency.count(), 1);
        assert_eq!(snap.violations["8c/test"]["m"].completed, 1);
    }
}
