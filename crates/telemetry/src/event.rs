//! The typed event vocabulary of the flight recorder.

use serde::{Deserialize, Serialize};

/// One recorded lifecycle event: a virtual-time instant on a track.
///
/// Track `0` is the fleet coordinator; track `i + 1` is node `i` in
/// roster order. Timestamps are seconds of *virtual* (simulation) time,
/// never wall clock, which is what makes traces reproducible.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Virtual-time instant, seconds.
    pub at_s: f64,
    /// Emitting track: `0` = coordinator, `i + 1` = node `i`.
    pub track: u32,
    /// What happened.
    pub kind: TraceEventKind,
}

/// The query-lifecycle, node-lifecycle, and autoscaler event vocabulary.
///
/// A query's span chain runs
/// `Submitted → (Routed → Admitted | Deferred | Shed)* → Dispatched* →
/// Completed [+ Violated]`, with `Requeued` marking a drain/crash detour
/// back through the front door. `query` is the fleet-wide trace id (the
/// original submission ticket), preserved across deferrals and reroutes,
/// so conservation holds: every `Submitted` chain terminates in exactly
/// one of `Completed` / `Shed`.
///
/// Model and node fields are integer ids; the [`Collector`] owning the
/// merged stream carries the matching name tables
/// (see [`TraceLog`](crate::TraceLog)).
///
/// [`Collector`]: crate::Collector
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEventKind {
    /// A query entered the fleet front door (timestamped at its clamped
    /// arrival — the latency baseline).
    Submitted {
        /// Fleet-wide trace id.
        query: u64,
        /// Model id (index into the collector's model table).
        model: u32,
    },
    /// The router picked a target node for one front-door decision.
    /// Emitted for *every* decision — including ones the admission
    /// controller subsequently defers or sheds — so the count of
    /// `Routed` events equals `CoordinatorStats::routing_decisions`.
    Routed {
        /// Fleet-wide trace id.
        query: u64,
        /// Roster index of the node the router chose.
        node: u32,
        /// Prior deferrals of this query.
        attempts: u32,
    },
    /// Admission control accepted the routing decision; the query was
    /// handed to the node.
    Admitted {
        /// Fleet-wide trace id.
        query: u64,
        /// Roster index of the admitting node.
        node: u32,
        /// Prior deferrals of this query.
        attempts: u32,
    },
    /// Admission control held the query at the front door.
    Deferred {
        /// Fleet-wide trace id.
        query: u64,
        /// Deferral count *including* this one.
        attempts: u32,
        /// Virtual time at which the query re-enters routing.
        until_s: f64,
    },
    /// Admission control (or the deferral hard cap) dropped the query —
    /// a terminal event.
    Shed {
        /// Fleet-wide trace id.
        query: u64,
        /// Model id.
        model: u32,
        /// Deferrals burned before the drop.
        attempts: u32,
    },
    /// A drain or crash bounced the query back to the front door for
    /// re-routing (its trace id survives the detour).
    Requeued {
        /// Fleet-wide trace id.
        query: u64,
        /// Roster index of the node that gave the query up.
        from_node: u32,
    },
    /// A node's dispatcher granted cores to a layer block of the query.
    /// The solo ratings are recorded only when tracing is enabled and
    /// feed [`explain`](crate::TraceLog::explain)'s decomposition.
    Dispatched {
        /// Fleet-wide trace id.
        query: u64,
        /// First layer (absolute index) of the dispatched block.
        unit: u32,
        /// Code version chosen for the block's first layer.
        version: u32,
        /// The scalar interference level the version selector planned
        /// under (0 when the policy plans pressure-blind).
        pressure_at_plan: f64,
        /// Rated latency of the first layer under the live co-location.
        expected_s: f64,
        /// Rated latency of the same version with no co-runners.
        solo_s: f64,
        /// Rated solo latency of the *best* version for this layer.
        solo_best_s: f64,
    },
    /// The query finished — a terminal event, emitted whether or not the
    /// deadline was met.
    Completed {
        /// Fleet-wide trace id.
        query: u64,
        /// Model id.
        model: u32,
        /// End-to-end latency, seconds (front-door holds included).
        latency_s: f64,
        /// The model's QoS target, seconds.
        qos_s: f64,
    },
    /// The completion missed its deadline. Emitted *in addition to*
    /// `Completed`, at the same instant — `Completed`/`Shed` stay the
    /// only terminals, which keeps conservation checks simple.
    Violated {
        /// Fleet-wide trace id.
        query: u64,
        /// Model id.
        model: u32,
        /// End-to-end latency, seconds.
        latency_s: f64,
        /// The model's QoS target, seconds.
        qos_s: f64,
    },
    /// A node joined the roster (seed nodes, manual joins, and
    /// autoscaler provisions all emit this).
    NodeJoined {
        /// Roster index of the new node.
        node: u32,
    },
    /// A node stopped making progress (fault injection).
    NodeStalled {
        /// Roster index.
        node: u32,
    },
    /// A stalled node resumed.
    NodeRecovered {
        /// Roster index.
        node: u32,
    },
    /// A graceful drain began: no new placements, waiting work bounced.
    NodeDraining {
        /// Roster index.
        node: u32,
    },
    /// A node crash-stopped; its incomplete work was requeued.
    NodeKilled {
        /// Roster index.
        node: u32,
    },
    /// A draining node finished its in-flight work and left the roster.
    NodeRetired {
        /// Roster index.
        node: u32,
    },
    /// The autoscaler requested `added` new nodes.
    ScaleOut {
        /// Nodes requested.
        added: u32,
    },
    /// The autoscaler began draining a node.
    ScaleIn {
        /// Roster index of the drain victim.
        node: u32,
    },
}

impl TraceEventKind {
    /// The event's stable display name (also the Chrome-trace event
    /// name).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            TraceEventKind::Submitted { .. } => "Submitted",
            TraceEventKind::Routed { .. } => "Routed",
            TraceEventKind::Admitted { .. } => "Admitted",
            TraceEventKind::Deferred { .. } => "Deferred",
            TraceEventKind::Shed { .. } => "Shed",
            TraceEventKind::Requeued { .. } => "Requeued",
            TraceEventKind::Dispatched { .. } => "Dispatched",
            TraceEventKind::Completed { .. } => "Completed",
            TraceEventKind::Violated { .. } => "Violated",
            TraceEventKind::NodeJoined { .. } => "NodeJoined",
            TraceEventKind::NodeStalled { .. } => "NodeStalled",
            TraceEventKind::NodeRecovered { .. } => "NodeRecovered",
            TraceEventKind::NodeDraining { .. } => "NodeDraining",
            TraceEventKind::NodeKilled { .. } => "NodeKilled",
            TraceEventKind::NodeRetired { .. } => "NodeRetired",
            TraceEventKind::ScaleOut { .. } => "ScaleOut",
            TraceEventKind::ScaleIn { .. } => "ScaleIn",
        }
    }

    /// The trace id this event belongs to, for query-lifecycle events.
    #[must_use]
    pub fn query(&self) -> Option<u64> {
        match self {
            TraceEventKind::Submitted { query, .. }
            | TraceEventKind::Routed { query, .. }
            | TraceEventKind::Admitted { query, .. }
            | TraceEventKind::Deferred { query, .. }
            | TraceEventKind::Shed { query, .. }
            | TraceEventKind::Requeued { query, .. }
            | TraceEventKind::Dispatched { query, .. }
            | TraceEventKind::Completed { query, .. }
            | TraceEventKind::Violated { query, .. } => Some(*query),
            _ => None,
        }
    }

    /// Rewrites the query id through `map` — how the collector converts
    /// a node sink's driver-local indices into fleet-wide trace ids.
    pub(crate) fn remap_query(&mut self, map: impl Fn(u64) -> u64) {
        match self {
            TraceEventKind::Submitted { query, .. }
            | TraceEventKind::Routed { query, .. }
            | TraceEventKind::Admitted { query, .. }
            | TraceEventKind::Deferred { query, .. }
            | TraceEventKind::Shed { query, .. }
            | TraceEventKind::Requeued { query, .. }
            | TraceEventKind::Dispatched { query, .. }
            | TraceEventKind::Completed { query, .. }
            | TraceEventKind::Violated { query, .. } => *query = map(*query),
            _ => {}
        }
    }
}
