//! The merged trace: span-chain queries, SLO-violation attribution, and
//! Chrome trace-event JSON export.

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use crate::event::{TraceEvent, TraceEventKind};

/// How a query's span chain ended.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryTerminal {
    /// The query completed (deadline met or missed).
    Completed,
    /// The query was shed at the front door.
    Shed,
    /// The trace ended before the query did (bounded recorder, or the
    /// run is still in flight).
    #[default]
    Open,
}

/// The merged, deterministically ordered event stream of one run, with
/// the name tables needed to render it. Built by
/// [`Collector::log`](crate::Collector::log).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceLog {
    /// Events sorted by `(at_s, track)` with stable emission-order
    /// tie-break.
    pub events: Vec<TraceEvent>,
    /// Track names: index 0 is the coordinator, `i + 1` is node `i`.
    pub tracks: Vec<String>,
    /// Node-class label per track (`"{cores}c/{policy}"`).
    pub classes: Vec<String>,
    /// Model names, indexed by the `model` field of events.
    pub models: Vec<String>,
}

impl TraceLog {
    /// Every event of one query's span chain, in merged order.
    #[must_use]
    pub fn span(&self, query: u64) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|e| e.kind.query() == Some(query))
            .collect()
    }

    /// All trace ids that appear in the log, sorted.
    #[must_use]
    pub fn query_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.events.iter().filter_map(|e| e.kind.query()).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// How `query`'s span chain terminated.
    #[must_use]
    pub fn terminal(&self, query: u64) -> QueryTerminal {
        let mut terminal = QueryTerminal::Open;
        for e in &self.events {
            match e.kind {
                TraceEventKind::Completed { query: q, .. } if q == query => {
                    terminal = QueryTerminal::Completed;
                }
                TraceEventKind::Shed { query: q, .. } if q == query => {
                    terminal = QueryTerminal::Shed;
                }
                _ => {}
            }
        }
        terminal
    }

    /// Decomposes one query's end-to-end latency from its recorded span
    /// chain — the "why did this query miss its SLO" view. Returns
    /// `None` when the query never appears in the log.
    #[must_use]
    pub fn explain(&self, query: u64) -> Option<SloAttribution> {
        let span = self.span(query);
        if span.is_empty() {
            return None;
        }
        let mut a = SloAttribution {
            query,
            ..SloAttribution::default()
        };
        let mut submitted_s = None;
        let mut admitted_s = None;
        let mut first_dispatch_s = None;
        let mut completed_s = None;
        for e in &span {
            match &e.kind {
                TraceEventKind::Submitted { model, .. } => {
                    submitted_s = Some(e.at_s);
                    a.model = self
                        .models
                        .get(*model as usize)
                        .cloned()
                        .unwrap_or_default();
                }
                TraceEventKind::Deferred { .. } => a.deferrals += 1,
                TraceEventKind::Requeued { .. } => a.reroutes += 1,
                TraceEventKind::Admitted { node, .. } => {
                    // The *last* admission names the serving node (a
                    // reroute re-admits); the *first* ends the
                    // front-door hold.
                    admitted_s = Some(e.at_s);
                    a.node = self.tracks.get(*node as usize + 1).cloned();
                    a.first_admitted_s = a.first_admitted_s.or(Some(e.at_s));
                }
                TraceEventKind::Shed { .. } => a.terminal = QueryTerminal::Shed,
                TraceEventKind::Dispatched {
                    expected_s,
                    solo_s,
                    solo_best_s,
                    ..
                } => {
                    first_dispatch_s = first_dispatch_s.or(Some(e.at_s));
                    a.dispatches += 1;
                    a.ideal_s += solo_best_s;
                    a.interference_excess_s += (expected_s - solo_s).max(0.0);
                    a.version_choice_s += (solo_s - solo_best_s).max(0.0);
                }
                TraceEventKind::Completed {
                    latency_s, qos_s, ..
                } => {
                    a.terminal = QueryTerminal::Completed;
                    completed_s = Some(e.at_s);
                    a.latency_s = *latency_s;
                    a.qos_s = *qos_s;
                    a.violated = latency_s > qos_s;
                }
                _ => {}
            }
        }
        a.submitted_s = submitted_s.unwrap_or(f64::NAN);
        // Single-machine sessions have no front door: with no admission
        // event the hold ends at submission, and queue wait runs from
        // there to first dispatch.
        let hold_end = a.first_admitted_s.or(admitted_s).or(submitted_s);
        if let (Some(sub), Some(adm)) = (submitted_s, hold_end) {
            a.deferral_hold_s = (adm - sub).max(0.0);
        }
        if let (Some(adm), Some(disp)) = (hold_end, first_dispatch_s) {
            a.queue_wait_s = (disp - adm).max(0.0);
        }
        if let (Some(disp), Some(done)) = (first_dispatch_s, completed_s) {
            a.execution_s = (done - disp).max(0.0);
            a.residual_s = a.execution_s - a.ideal_s - a.interference_excess_s - a.version_choice_s;
        }
        Some(a)
    }

    /// Serializes the log as Chrome trace-event JSON (the
    /// `{"traceEvents": [...]}` object form), loadable in Perfetto and
    /// `chrome://tracing`: one thread track per node plus the
    /// coordinator, instant events with full payloads in `args`,
    /// timestamps in microseconds of virtual time.
    ///
    /// Hand-written serialization: the workspace is hermetic (no
    /// `serde_json`), and the event vocabulary is closed, so the writer
    /// enumerates it directly. Output is a pure function of the sorted
    /// stream — byte-identical whenever the log is.
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.events.len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let mut push_obj = |out: &mut String, body: &str| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push('{');
            out.push_str(body);
            out.push('}');
        };
        let mut meta = String::new();
        let _ = write!(
            meta,
            "\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
             \"args\":{{\"name\":\"veltair\"}}"
        );
        push_obj(&mut out, &meta);
        for (tid, name) in self.tracks.iter().enumerate() {
            let mut m = String::new();
            let _ = write!(
                m,
                "\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
                 \"args\":{{\"name\":\"{}\"}}",
                escape(name)
            );
            push_obj(&mut out, &m);
        }
        let mut body = String::new();
        for e in &self.events {
            body.clear();
            let _ = write!(
                body,
                "\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{},\"ts\":{},\
                 \"args\":{{",
                e.kind.name(),
                e.track,
                json_f64(e.at_s * 1e6)
            );
            self.write_args(&mut body, &e.kind);
            body.push('}');
            push_obj(&mut out, &body);
        }
        out.push_str("]}");
        out
    }

    fn write_args(&self, out: &mut String, kind: &TraceEventKind) {
        let model_name = |m: &u32| {
            self.models
                .get(*m as usize)
                .map_or("<unknown>", String::as_str)
        };
        match kind {
            TraceEventKind::Submitted { query, model } => {
                let _ = write!(
                    out,
                    "\"query\":{query},\"model\":\"{}\"",
                    escape(model_name(model))
                );
            }
            TraceEventKind::Routed {
                query,
                node,
                attempts,
            } => {
                let _ = write!(
                    out,
                    "\"query\":{query},\"node\":{node},\"attempts\":{attempts}"
                );
            }
            TraceEventKind::Admitted {
                query,
                node,
                attempts,
            } => {
                let _ = write!(
                    out,
                    "\"query\":{query},\"node\":{node},\"attempts\":{attempts}"
                );
            }
            TraceEventKind::Deferred {
                query,
                attempts,
                until_s,
            } => {
                let _ = write!(
                    out,
                    "\"query\":{query},\"attempts\":{attempts},\"until_s\":{}",
                    json_f64(*until_s)
                );
            }
            TraceEventKind::Shed {
                query,
                model,
                attempts,
            } => {
                let _ = write!(
                    out,
                    "\"query\":{query},\"model\":\"{}\",\"attempts\":{attempts}",
                    escape(model_name(model))
                );
            }
            TraceEventKind::Requeued { query, from_node } => {
                let _ = write!(out, "\"query\":{query},\"from_node\":{from_node}");
            }
            TraceEventKind::Dispatched {
                query,
                unit,
                version,
                pressure_at_plan,
                expected_s,
                solo_s,
                solo_best_s,
            } => {
                let _ = write!(
                    out,
                    "\"query\":{query},\"unit\":{unit},\"version\":{version},\
                     \"pressure_at_plan\":{},\"expected_s\":{},\"solo_s\":{},\
                     \"solo_best_s\":{}",
                    json_f64(*pressure_at_plan),
                    json_f64(*expected_s),
                    json_f64(*solo_s),
                    json_f64(*solo_best_s)
                );
            }
            TraceEventKind::Completed {
                query,
                model,
                latency_s,
                qos_s,
            }
            | TraceEventKind::Violated {
                query,
                model,
                latency_s,
                qos_s,
            } => {
                let _ = write!(
                    out,
                    "\"query\":{query},\"model\":\"{}\",\"latency_s\":{},\"qos_s\":{}",
                    escape(model_name(model)),
                    json_f64(*latency_s),
                    json_f64(*qos_s)
                );
            }
            TraceEventKind::NodeJoined { node }
            | TraceEventKind::NodeStalled { node }
            | TraceEventKind::NodeRecovered { node }
            | TraceEventKind::NodeDraining { node }
            | TraceEventKind::NodeKilled { node }
            | TraceEventKind::NodeRetired { node }
            | TraceEventKind::ScaleIn { node } => {
                let _ = write!(out, "\"node\":{node}");
            }
            TraceEventKind::ScaleOut { added } => {
                let _ = write!(out, "\"added\":{added}");
            }
        }
    }
}

/// JSON-safe rendering of an `f64`: finite values print through Rust's
/// shortest-roundtrip formatter (valid JSON numbers, exponents
/// included); non-finite values — which never occur in virtual-time
/// streams but must not corrupt the file — become `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Minimal JSON string escaping for names that reach the export.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The decomposition of one query's end-to-end latency, reconstructed
/// from its span chain by [`TraceLog::explain`].
///
/// `latency ≈ deferral_hold + queue_wait + execution`, and
/// `execution ≈ ideal + interference_excess + version_choice +
/// residual`, where the residual carries everything the per-block solo
/// ratings cannot see (later units of multi-layer blocks, mid-block
/// re-rating drift, inter-block gaps).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SloAttribution {
    /// The trace id this attribution explains.
    pub query: u64,
    /// Model name.
    pub model: String,
    /// Final serving node's track name, when admitted anywhere.
    pub node: Option<String>,
    /// How the span chain ended.
    pub terminal: QueryTerminal,
    /// Front-door arrival, seconds of virtual time.
    pub submitted_s: f64,
    /// First successful admission instant, if any.
    pub first_admitted_s: Option<f64>,
    /// End-to-end latency, seconds (0 when shed or still open).
    pub latency_s: f64,
    /// The model's QoS target, seconds.
    pub qos_s: f64,
    /// Whether the completion missed its deadline.
    pub violated: bool,
    /// Deferral events in the chain.
    pub deferrals: u32,
    /// Requeue (drain/crash reroute) events in the chain.
    pub reroutes: u32,
    /// Dispatched blocks in the chain.
    pub dispatches: u32,
    /// Front-door hold: first admission minus submission.
    pub deferral_hold_s: f64,
    /// On-node queue wait: first dispatch minus first admission.
    pub queue_wait_s: f64,
    /// On-core span: completion minus first dispatch.
    pub execution_s: f64,
    /// Sum of best-version solo ratings over dispatched blocks — the
    /// latency floor the compiler could reach with no co-runners.
    pub ideal_s: f64,
    /// Interference slowdown: expected-under-co-location minus solo, at
    /// the chosen versions.
    pub interference_excess_s: f64,
    /// Version-choice cost: chosen-version solo minus best-version solo.
    pub version_choice_s: f64,
    /// Execution time the per-block ratings do not account for.
    pub residual_s: f64,
}

impl std::fmt::Display for SloAttribution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ms = |s: f64| s * 1e3;
        writeln!(
            f,
            "query {} ({}) — {}",
            self.query,
            self.model,
            match (self.terminal, self.violated) {
                (QueryTerminal::Shed, _) => "SHED at the front door".to_string(),
                (QueryTerminal::Open, _) => "still in flight".to_string(),
                (QueryTerminal::Completed, true) => format!(
                    "VIOLATED: {:.2} ms against a {:.2} ms target",
                    ms(self.latency_s),
                    ms(self.qos_s)
                ),
                (QueryTerminal::Completed, false) => format!(
                    "met SLO: {:.2} ms against a {:.2} ms target",
                    ms(self.latency_s),
                    ms(self.qos_s)
                ),
            }
        )?;
        if self.terminal == QueryTerminal::Shed {
            return write!(f, "  deferrals before shed: {}", self.deferrals);
        }
        writeln!(
            f,
            "  deferral hold  {:>8.3} ms  ({} deferral(s), {} reroute(s))",
            ms(self.deferral_hold_s),
            self.deferrals,
            self.reroutes
        )?;
        writeln!(f, "  queue wait     {:>8.3} ms", ms(self.queue_wait_s))?;
        writeln!(
            f,
            "  execution      {:>8.3} ms  over {} block(s), of which:",
            ms(self.execution_s),
            self.dispatches
        )?;
        writeln!(f, "    ideal (best solo) {:>8.3} ms", ms(self.ideal_s))?;
        writeln!(
            f,
            "    interference      {:>8.3} ms",
            ms(self.interference_excess_s)
        )?;
        writeln!(
            f,
            "    version choice    {:>8.3} ms",
            ms(self.version_choice_s)
        )?;
        write!(f, "    residual          {:>8.3} ms", ms(self.residual_s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_with(events: Vec<TraceEvent>) -> TraceLog {
        TraceLog {
            events,
            tracks: vec!["coordinator".into(), "node-0".into()],
            classes: vec!["coordinator".into(), "8c/test".into()],
            models: vec!["m".into()],
        }
    }

    #[test]
    fn explain_decomposes_a_simple_chain() {
        let log = log_with(vec![
            TraceEvent {
                at_s: 0.0,
                track: 0,
                kind: TraceEventKind::Submitted { query: 3, model: 0 },
            },
            TraceEvent {
                at_s: 0.010,
                track: 0,
                kind: TraceEventKind::Admitted {
                    query: 3,
                    node: 0,
                    attempts: 1,
                },
            },
            TraceEvent {
                at_s: 0.015,
                track: 1,
                kind: TraceEventKind::Dispatched {
                    query: 3,
                    unit: 0,
                    version: 2,
                    pressure_at_plan: 0.4,
                    expected_s: 0.030,
                    solo_s: 0.020,
                    solo_best_s: 0.018,
                },
            },
            TraceEvent {
                at_s: 0.050,
                track: 1,
                kind: TraceEventKind::Completed {
                    query: 3,
                    model: 0,
                    latency_s: 0.050,
                    qos_s: 0.040,
                },
            },
        ]);
        let a = log.explain(3).expect("query in log");
        assert!(a.violated);
        assert_eq!(a.terminal, QueryTerminal::Completed);
        assert!((a.deferral_hold_s - 0.010).abs() < 1e-12);
        assert!((a.queue_wait_s - 0.005).abs() < 1e-12);
        assert!((a.execution_s - 0.035).abs() < 1e-12);
        assert!((a.interference_excess_s - 0.010).abs() < 1e-12);
        assert!((a.version_choice_s - 0.002).abs() < 1e-12);
        let recon = a.ideal_s + a.interference_excess_s + a.version_choice_s + a.residual_s;
        assert!((recon - a.execution_s).abs() < 1e-12);
        assert!(log.explain(99).is_none());
        assert_eq!(log.terminal(3), QueryTerminal::Completed);
        // Display renders without panicking and mentions the verdict.
        assert!(format!("{a}").contains("VIOLATED"));
    }

    #[test]
    fn chrome_json_is_wellformed_enough() {
        let log = log_with(vec![TraceEvent {
            at_s: 0.001,
            track: 1,
            kind: TraceEventKind::Dispatched {
                query: 0,
                unit: 0,
                version: 1,
                pressure_at_plan: 0.25,
                expected_s: 0.01,
                solo_s: 0.008,
                solo_best_s: 0.008,
            },
        }]);
        let json = log.to_chrome_json();
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"ts\":1000"));
        assert!(json.contains("\"pressure_at_plan\":0.25"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
    }
}
