//! The metrics registry: event counters, latency histograms, and the
//! per-(node-class, model) violation-frequency table that calibrated
//! admission control trains on.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::histogram::LatencyHistogram;

/// Pseudo node-class under which front-door sheds are tabulated in the
/// violation table: a shed query never reaches a node, so it has no real
/// class, but admission calibration still needs its frequency per model.
pub const FRONT_DOOR_CLASS: &str = "front-door";

/// Monotone counters over every event kind the recorder has absorbed.
///
/// These are pure event counts — no routing-path op counts — so they are
/// identical across `StepMode` and `RoutingMode` and safe to compare in
/// whole-snapshot equality asserts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventCounts {
    /// `Submitted` events (== front-door submissions).
    pub submitted: u64,
    /// `Routed` events (== `CoordinatorStats::routing_decisions`).
    pub routed: u64,
    /// `Admitted` events (successful placements, reroutes included).
    pub admitted: u64,
    /// `Deferred` events (== `FleetReport::deferrals`).
    pub deferred: u64,
    /// `Shed` terminal events (== `FleetReport::shed`).
    pub shed: u64,
    /// `Requeued` events (== `FleetReport::rerouted`).
    pub requeued: u64,
    /// `Dispatched` events (core grants to layer blocks).
    pub dispatched: u64,
    /// `Completed` terminal events.
    pub completed: u64,
    /// `Violated` events (completions past their deadline).
    pub violated: u64,
    /// `NodeJoined` events (== `CoordinatorStats::nodes_added` plus the
    /// seed roster).
    pub node_joined: u64,
    /// `NodeStalled` events.
    pub node_stalled: u64,
    /// `NodeRecovered` events.
    pub node_recovered: u64,
    /// `NodeDraining` events (== `CoordinatorStats::nodes_drained`).
    pub node_draining: u64,
    /// `NodeKilled` events (== `CoordinatorStats::nodes_killed`).
    pub node_killed: u64,
    /// `NodeRetired` events (drains that completed).
    pub node_retired: u64,
    /// `ScaleOut` autoscaler events.
    pub scale_out: u64,
    /// `ScaleIn` autoscaler events.
    pub scale_in: u64,
}

/// One cell of the violation-frequency table: outcomes of every query of
/// one model on one node class (or shed at the [`FRONT_DOOR_CLASS`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ViolationCell {
    /// Queries of this model completed on this node class.
    pub completed: u64,
    /// Of those, completions past the model's QoS target.
    pub violated: u64,
    /// Queries of this model shed (only populated under
    /// [`FRONT_DOOR_CLASS`]).
    pub shed: u64,
}

impl ViolationCell {
    /// Measured violation frequency: `violated / completed` (0 when no
    /// completions) — the per-(class, model) signal calibrated admission
    /// reads.
    #[must_use]
    pub fn violation_rate(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.violated as f64 / self.completed as f64
        }
    }
}

/// A point-in-time copy of the metrics registry, surfaced on
/// `FleetSnapshot`/`FleetReport` when telemetry is enabled.
///
/// Deliberately contains *only* mode-independent data (event counts,
/// histograms, the violation table) — never coordinator op counts — so a
/// snapshot taken under any `StepMode` × `RoutingMode` combination
/// compares equal to one taken under any other.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// Counters over every absorbed event kind.
    pub counts: EventCounts,
    /// Log-bucketed end-to-end latency over all completions.
    pub latency: LatencyHistogram,
    /// The same histogram, per model name.
    pub per_model_latency: BTreeMap<String, LatencyHistogram>,
    /// The violation-frequency table: node class → model name → cell.
    /// Node classes are `"{cores}c/{policy}"` labels plus
    /// [`FRONT_DOOR_CLASS`] for sheds.
    pub violations: BTreeMap<String, BTreeMap<String, ViolationCell>>,
    /// Events absorbed into the merged stream so far.
    pub events_recorded: u64,
    /// Events lost to bounded flight-recorder buffers.
    pub events_dropped: u64,
}

impl TelemetrySnapshot {
    /// Flattened `(class, model, cell)` rows of the violation table, in
    /// deterministic (class, model) order — the display/export view.
    #[must_use]
    pub fn violation_rows(&self) -> Vec<(&str, &str, &ViolationCell)> {
        self.violations
            .iter()
            .flat_map(|(class, models)| {
                models
                    .iter()
                    .map(move |(model, cell)| (class.as_str(), model.as_str(), cell))
            })
            .collect()
    }
}
