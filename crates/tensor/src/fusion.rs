//! Operator fusion patterns.
//!
//! The paper's compiler "enables the operator fusion optimization in the
//! auto-scheduler, which includes common fusion patterns like `conv-relu`
//! and `conv-batchnorm-relu`" (§4.1). We reproduce that pipeline stage here:
//! a compute-intensive producer absorbs the run of cheap element-wise
//! epilogues that follows it, eliminating the intermediate feature-map
//! round-trips to memory.

use serde::{Deserialize, Serialize};

use crate::layer::Layer;

/// A fused scheduling unit: one producer layer plus zero or more element-wise
/// epilogue layers computed in-register before the output is stored.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FusedUnit {
    /// The producer (conv / dense / matmul, or a standalone cheap operator
    /// that had no producer to fuse into).
    pub base: Layer,
    /// Element-wise operators fused after the producer, in program order.
    pub epilogue: Vec<Layer>,
}

impl FusedUnit {
    /// A unit consisting of a single unfused layer.
    #[must_use]
    pub fn solo(base: Layer) -> Self {
        Self {
            base,
            epilogue: Vec::new(),
        }
    }

    /// Display name: producer name plus fused mnemonics.
    #[must_use]
    pub fn name(&self) -> String {
        if self.epilogue.is_empty() {
            self.base.name.clone()
        } else {
            let tail: Vec<&str> = self.epilogue.iter().map(|l| l.op.mnemonic()).collect();
            format!("{}+{}", self.base.name, tail.join("+"))
        }
    }

    /// Total FLOPs of the fused unit.
    #[must_use]
    pub fn flops(&self) -> f64 {
        self.base.flops() + self.epilogue.iter().map(Layer::flops).sum::<f64>()
    }

    /// Weight bytes of the fused unit (producer + epilogue affine params).
    #[must_use]
    pub fn weight_bytes(&self) -> f64 {
        self.base.weight_bytes() + self.epilogue.iter().map(Layer::weight_bytes).sum::<f64>()
    }

    /// Input bytes: the producer's inputs plus any *extra* operands epilogue
    /// layers read (e.g. the residual tensor of an `EltwiseAdd`). The
    /// producer's own output never round-trips to memory.
    #[must_use]
    pub fn input_bytes(&self) -> f64 {
        let extra: f64 = self
            .epilogue
            .iter()
            .map(|l| {
                // One of the epilogue inputs is the in-register intermediate;
                // only additional operands cost memory traffic.
                (l.input_bytes() - l.input.bytes(l.dtype) as f64).max(0.0)
            })
            .sum();
        self.base.input_bytes() + extra
    }

    /// Output bytes written by the unit (the final epilogue's output).
    #[must_use]
    pub fn output_bytes(&self) -> f64 {
        self.epilogue
            .last()
            .map_or_else(|| self.base.output_bytes(), Layer::output_bytes)
    }

    /// Total bytes at perfect reuse.
    #[must_use]
    pub fn total_bytes(&self) -> f64 {
        self.weight_bytes() + self.input_bytes() + self.output_bytes()
    }

    /// Memory traffic saved by fusing, relative to running each layer
    /// separately (the intermediates that no longer hit memory).
    #[must_use]
    pub fn traffic_saved_bytes(&self) -> f64 {
        if self.epilogue.is_empty() {
            return 0.0;
        }
        // Each fused boundary saves one store + one load of the intermediate.
        let mut saved = 2.0 * self.base.output_bytes();
        for pair in self.epilogue.windows(2) {
            saved += 2.0 * pair[0].output_bytes();
        }
        saved
    }
}

/// Greedily fuses a layer sequence: every compute-intensive producer absorbs
/// the maximal run of fusable element-wise epilogues that follows it.
///
/// Standalone cheap layers (a pool between two convs, a softmax head) become
/// [`FusedUnit::solo`] units.
#[must_use]
pub fn fuse_layers(layers: &[Layer]) -> Vec<FusedUnit> {
    fuse_with_cap(layers, usize::MAX)
}

/// Maximum epilogue-run length a producer may absorb at a given interference
/// level, out of `max_levels` discretized levels (GACER-style granularity
/// regulation).
///
/// Level 0 (no contention) keeps maximal fusion; the cap then steps down as
/// the targeted pressure rises, reaching zero (no fusion, every layer its
/// own unit) at the highest level. With a single level (`max_levels <= 1`)
/// fusion is always maximal.
#[must_use]
pub fn fusion_cap_for_level(level: usize, max_levels: usize) -> usize {
    if max_levels <= 1 || level == 0 {
        return usize::MAX;
    }
    let ratio = (level.min(max_levels - 1)) as f64 / (max_levels - 1) as f64;
    // ratio in (0, 1]: 4 epilogues just above zero pressure, none at full
    // pressure. The interior plateaus (cap 2 over mid pressure) keep the
    // common conv+bn+relu unit intact until contention is severe.
    ((1.0 - ratio) * 4.0).floor() as usize
}

/// Granularity-aware fusion: like [`fuse_layers`], but the epilogue run a
/// producer may absorb is capped by [`fusion_cap_for_level`] — long fused
/// runs are split at high interference levels (smaller units → finer
/// preemption/concurrency granularity under contention, per GACER), while
/// low levels keep the maximal fusion of the paper's §4.1 pipeline.
///
/// Epilogue layers beyond the cap become standalone units, so FLOPs and
/// program order are conserved at every level.
#[must_use]
pub fn fuse_layers_at_level(layers: &[Layer], level: usize, max_levels: usize) -> Vec<FusedUnit> {
    fuse_with_cap(layers, fusion_cap_for_level(level, max_levels))
}

fn fuse_with_cap(layers: &[Layer], cap: usize) -> Vec<FusedUnit> {
    let mut units = Vec::new();
    let mut i = 0;
    while i < layers.len() {
        let base = layers[i].clone();
        i += 1;
        if base.op.is_compute_intensive() {
            let mut epilogue = Vec::new();
            while i < layers.len() && layers[i].op.is_fusable_epilogue() && epilogue.len() < cap {
                epilogue.push(layers[i].clone());
                i += 1;
            }
            units.push(FusedUnit { base, epilogue });
        } else {
            units.push(FusedUnit::solo(base));
        }
    }
    units
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{ActKind, OpKind, PoolKind};
    use crate::shape::FeatureMap;

    fn conv_bn_relu() -> Vec<Layer> {
        let fm = FeatureMap::nchw(1, 64, 56, 56);
        let conv = Layer::conv2d("c1", fm, 64, (3, 3), (1, 1), (1, 1));
        let out = conv.output();
        vec![
            conv,
            Layer::new("bn1", OpKind::BatchNorm, out),
            Layer::activation("relu1", out, ActKind::Relu),
        ]
    }

    #[test]
    fn conv_bn_relu_fuses_to_one_unit() {
        let units = fuse_layers(&conv_bn_relu());
        assert_eq!(units.len(), 1);
        assert_eq!(units[0].epilogue.len(), 2);
        assert_eq!(units[0].name(), "c1+bn+act");
    }

    #[test]
    fn fusion_conserves_flops() {
        let layers = conv_bn_relu();
        let sum: f64 = layers.iter().map(Layer::flops).sum();
        let units = fuse_layers(&layers);
        let fused: f64 = units.iter().map(FusedUnit::flops).sum();
        assert!((sum - fused).abs() < 1e-6);
    }

    #[test]
    fn fusion_saves_intermediate_traffic() {
        let layers = conv_bn_relu();
        let unit = &fuse_layers(&layers)[0];
        let unfused: f64 = layers.iter().map(Layer::total_bytes).sum();
        assert!(unit.total_bytes() < unfused);
        assert!(unit.traffic_saved_bytes() > 0.0);
        // Saved = intermediates stored+loaded at two fused boundaries.
        let inter = layers[0].output_bytes();
        assert!((unit.traffic_saved_bytes() - 4.0 * inter).abs() < 1e-6);
    }

    #[test]
    fn pool_breaks_fusion_run() {
        let fm = FeatureMap::nchw(1, 64, 56, 56);
        let conv = Layer::conv2d("c1", fm, 64, (1, 1), (1, 1), (0, 0));
        let out = conv.output();
        let layers = vec![
            conv,
            Layer::new(
                "pool",
                OpKind::Pool {
                    kind: PoolKind::Max,
                    kernel: (2, 2),
                    stride: (2, 2),
                },
                out,
            ),
            Layer::activation("relu", FeatureMap::nchw(1, 64, 28, 28), ActKind::Relu),
        ];
        let units = fuse_layers(&layers);
        assert_eq!(units.len(), 3);
        assert!(units[0].epilogue.is_empty());
    }

    #[test]
    fn residual_add_extra_operand_counts_once() {
        let fm = FeatureMap::nchw(1, 256, 56, 56);
        let conv = Layer::conv2d("c", fm, 256, (1, 1), (1, 1), (0, 0));
        let out = conv.output();
        let layers = vec![conv.clone(), Layer::new("add", OpKind::EltwiseAdd, out)];
        let unit = &fuse_layers(&layers)[0];
        // Extra residual operand = one feature map.
        let expected = conv.input_bytes() + out.bytes(conv.dtype) as f64;
        assert!((unit.input_bytes() - expected).abs() < 1e-6);
    }

    #[test]
    fn empty_sequence_yields_no_units() {
        assert!(fuse_layers(&[]).is_empty());
    }

    #[test]
    fn level_zero_matches_maximal_fusion() {
        let layers = conv_bn_relu();
        assert_eq!(
            fuse_layers_at_level(&layers, 0, 11),
            fuse_layers(&layers),
            "level 0 must keep the paper's maximal fusion"
        );
        assert_eq!(fuse_layers_at_level(&layers, 10, 1), fuse_layers(&layers));
    }

    #[test]
    fn cap_is_monotone_in_level() {
        let caps: Vec<usize> = (0..11).map(|l| fusion_cap_for_level(l, 11)).collect();
        assert!(caps.windows(2).all(|w| w[0] >= w[1]), "caps not monotone");
        assert_eq!(caps[0], usize::MAX);
        assert_eq!(caps[10], 0, "full pressure must unfuse everything");
    }

    #[test]
    fn high_levels_split_long_runs_and_conserve_flops() {
        let layers = conv_bn_relu();
        let total: f64 = layers.iter().map(Layer::flops).sum();
        for level in 0..11 {
            let units = fuse_layers_at_level(&layers, level, 11);
            let fused: f64 = units.iter().map(FusedUnit::flops).sum();
            assert!((total - fused).abs() < 1e-6, "level {level} lost FLOPs");
            let n_layers: usize = units.iter().map(|u| 1 + u.epilogue.len()).sum();
            assert_eq!(n_layers, layers.len(), "level {level} lost layers");
        }
        // At full pressure every layer stands alone.
        let top = fuse_layers_at_level(&layers, 10, 11);
        assert_eq!(top.len(), layers.len());
        assert!(top.iter().all(|u| u.epilogue.is_empty()));
        // Mid pressure keeps conv+bn fused but sheds the tail of long runs.
        let mid = fuse_layers_at_level(&layers, 7, 11);
        assert!(mid.len() > 1 && mid.len() < layers.len());
    }
}
