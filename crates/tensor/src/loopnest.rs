//! Loop-nest view of compute-intensive operators.
//!
//! Every operator the compiler tunes (convolution, dense, batched matmul) is
//! normalized to a *GEMM view*: `batch` independent `M x K x N` contractions.
//! Convolutions use the im2col correspondence (`M = OH*OW`, `N = OC/groups`,
//! `K = IC/groups * KH * KW`, `batch = groups`). The normalization is what
//! lets a single tiling space — and a single traffic model — cover all seven
//! evaluated networks, mirroring how Ansor derives its sketch from the
//! operator's loop nest.

use serde::{Deserialize, Serialize};

use crate::layer::Layer;
use crate::ops::OpKind;
use crate::shape::DType;

/// Role of one loop in a nest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LoopKind {
    /// Iterations are independent; the loop may be parallelized and tiled.
    Parallel,
    /// Iterations accumulate into the same output; tiling yields partial sums.
    Reduction,
}

/// One loop of a perfectly-nested loop nest.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LoopDim {
    /// Axis mnemonic (`oc`, `oh`, `ic`, `m`, `k`, ...).
    pub name: &'static str,
    /// Trip count.
    pub extent: usize,
    /// Parallel or reduction.
    pub kind: LoopKind,
}

/// A perfectly-nested loop nest, outermost first.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LoopNest {
    /// Loops, outermost first.
    pub dims: Vec<LoopDim>,
}

impl LoopNest {
    /// Product of all parallel extents (maximum loop-level parallelism).
    #[must_use]
    pub fn parallel_iterations(&self) -> usize {
        self.dims
            .iter()
            .filter(|d| d.kind == LoopKind::Parallel)
            .map(|d| d.extent)
            .product()
    }

    /// Product of all reduction extents.
    #[must_use]
    pub fn reduction_iterations(&self) -> usize {
        self.dims
            .iter()
            .filter(|d| d.kind == LoopKind::Reduction)
            .map(|d| d.extent)
            .product()
    }

    /// Total iteration count.
    #[must_use]
    pub fn total_iterations(&self) -> usize {
        self.dims.iter().map(|d| d.extent).product()
    }
}

/// GEMM-normalized view of a compute-intensive layer.
///
/// `batch` independent contractions of an `m x k` operand A (activations)
/// with a `k x n` operand B (weights, or the second activation for attention
/// matmuls), producing an `m x n` output C.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GemmView {
    /// Independent contraction count (conv groups / attention heads).
    pub batch: usize,
    /// Rows of A and C.
    pub m: usize,
    /// Contraction extent.
    pub k: usize,
    /// Columns of B and C.
    pub n: usize,
    /// Element size in bytes.
    pub elem_bytes: usize,
}

impl GemmView {
    /// Extracts the GEMM view of a layer, or `None` for operators without a
    /// tunable loop nest (pool, softmax, element-wise, ...).
    #[must_use]
    pub fn of(layer: &Layer) -> Option<Self> {
        let elem_bytes = layer.dtype.bytes();
        match layer.op {
            OpKind::Conv2d {
                in_ch,
                out_ch,
                kernel,
                groups,
                ..
            } => {
                let out = layer.output();
                Some(GemmView {
                    batch: groups,
                    m: out.h * out.w,
                    k: (in_ch / groups) * kernel.0 * kernel.1,
                    n: out_ch / groups,
                    elem_bytes,
                })
            }
            OpKind::Dense { m, k, n } => Some(GemmView {
                batch: 1,
                m,
                k,
                n,
                elem_bytes,
            }),
            OpKind::BatchedMatMul { batch, m, k, n } => Some(GemmView {
                batch,
                m,
                k,
                n,
                elem_bytes,
            }),
            _ => None,
        }
    }

    /// Total FLOPs of the contraction (2 per multiply-accumulate).
    #[must_use]
    pub fn flops(&self) -> f64 {
        2.0 * self.batch as f64 * self.m as f64 * self.k as f64 * self.n as f64
    }

    /// Bytes of operand A across all batches.
    #[must_use]
    pub fn a_bytes(&self) -> f64 {
        (self.batch * self.m * self.k * self.elem_bytes) as f64
    }

    /// Bytes of operand B across all batches.
    #[must_use]
    pub fn b_bytes(&self) -> f64 {
        (self.batch * self.k * self.n * self.elem_bytes) as f64
    }

    /// Bytes of the output C across all batches.
    #[must_use]
    pub fn c_bytes(&self) -> f64 {
        (self.batch * self.m * self.n * self.elem_bytes) as f64
    }
}

/// Builds the canonical loop nest of a layer, or `None` for operators that
/// have no tunable nest.
#[must_use]
pub fn loop_nest(layer: &Layer) -> Option<LoopNest> {
    let v = GemmView::of(layer)?;
    let mut dims = Vec::with_capacity(4);
    if v.batch > 1 {
        dims.push(LoopDim {
            name: "b",
            extent: v.batch,
            kind: LoopKind::Parallel,
        });
    }
    dims.push(LoopDim {
        name: "m",
        extent: v.m,
        kind: LoopKind::Parallel,
    });
    dims.push(LoopDim {
        name: "n",
        extent: v.n,
        kind: LoopKind::Parallel,
    });
    dims.push(LoopDim {
        name: "k",
        extent: v.k,
        kind: LoopKind::Reduction,
    });
    Some(LoopNest { dims })
}

/// Element size helper re-exported for cost models.
#[must_use]
pub fn elem_bytes(dtype: DType) -> usize {
    dtype.bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::FeatureMap;

    #[test]
    fn conv_gemm_view_im2col() {
        let l = Layer::conv2d(
            "c",
            FeatureMap::nchw(1, 64, 56, 56),
            128,
            (3, 3),
            (1, 1),
            (1, 1),
        );
        let v = GemmView::of(&l).unwrap();
        assert_eq!(v.m, 56 * 56);
        assert_eq!(v.k, 64 * 9);
        assert_eq!(v.n, 128);
        assert_eq!(v.batch, 1);
        // GEMM view FLOPs must agree with the layer accounting.
        assert!((v.flops() - l.flops()).abs() < 1e-6);
    }

    #[test]
    fn depthwise_gemm_view_degenerates() {
        let l = Layer::dwconv2d(
            "dw",
            FeatureMap::nchw(1, 144, 28, 28),
            (3, 3),
            (1, 1),
            (1, 1),
        );
        let v = GemmView::of(&l).unwrap();
        assert_eq!(v.batch, 144);
        assert_eq!(v.n, 1);
        assert_eq!(v.k, 9);
        assert!((v.flops() - l.flops()).abs() < 1e-6);
    }

    #[test]
    fn gemm_view_bytes_match_layer() {
        let l = Layer::dense("fc", FeatureMap::nchw(1, 2048, 1, 1), 1000);
        let v = GemmView::of(&l).unwrap();
        assert_eq!(v.b_bytes(), l.weight_bytes());
        assert_eq!(v.c_bytes(), l.output_bytes());
    }

    #[test]
    fn non_intensive_ops_have_no_nest() {
        let l = Layer::new("sm", OpKind::Softmax, FeatureMap::seq(384, 384));
        assert!(GemmView::of(&l).is_none());
        assert!(loop_nest(&l).is_none());
    }

    #[test]
    fn loop_nest_parallelism() {
        let l = Layer::conv2d(
            "c",
            FeatureMap::nchw(1, 64, 14, 14),
            256,
            (1, 1),
            (1, 1),
            (0, 0),
        );
        let nest = loop_nest(&l).unwrap();
        assert_eq!(nest.parallel_iterations(), 14 * 14 * 256);
        assert_eq!(nest.reduction_iterations(), 64);
        assert_eq!(nest.total_iterations(), 14 * 14 * 256 * 64);
    }
}
