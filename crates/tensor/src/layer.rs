//! A layer: an operator instance bound to a concrete input shape.

use serde::{Deserialize, Serialize};

use crate::ops::{ActKind, OpKind, PoolKind};
use crate::shape::{DType, FeatureMap};

/// One layer of a DNN: an [`OpKind`] applied to a concrete input
/// [`FeatureMap`].
///
/// Layers expose the architectural profile (FLOPs, weight / activation bytes)
/// that both the compiler's cost model and the scheduler's core-requirement
/// estimation consume. All byte accounting assumes the layer's [`DType`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Layer {
    /// Human-readable unique-ish name (e.g. `res3a_branch2b`).
    pub name: String,
    /// The operator.
    pub op: OpKind,
    /// Input feature map shape.
    pub input: FeatureMap,
    /// Element type.
    pub dtype: DType,
}

impl Layer {
    /// Creates a layer, validating that the operator is compatible with the
    /// input shape.
    ///
    /// # Panics
    ///
    /// Panics if a convolution's `in_ch` disagrees with `input.c`, if
    /// `groups` does not divide both channel counts, or if a dense layer's
    /// `k` disagrees with the input features.
    #[must_use]
    pub fn new(name: impl Into<String>, op: OpKind, input: FeatureMap) -> Self {
        match op {
            OpKind::Conv2d {
                in_ch,
                out_ch,
                groups,
                ..
            } => {
                assert_eq!(in_ch, input.c, "conv in_ch must match input channels");
                assert!(
                    groups > 0 && in_ch % groups == 0 && out_ch % groups == 0,
                    "groups must divide channels"
                );
            }
            OpKind::Dense { k, .. } => {
                assert_eq!(k, input.c, "dense k must match input features");
            }
            _ => {}
        }
        Self {
            name: name.into(),
            op,
            input,
            dtype: DType::F32,
        }
    }

    /// Convenience constructor for a standard (non-grouped) convolution.
    #[must_use]
    pub fn conv2d(
        name: impl Into<String>,
        input: FeatureMap,
        out_ch: usize,
        kernel: (usize, usize),
        stride: (usize, usize),
        padding: (usize, usize),
    ) -> Self {
        Self::new(
            name,
            OpKind::Conv2d {
                in_ch: input.c,
                out_ch,
                kernel,
                stride,
                padding,
                groups: 1,
            },
            input,
        )
    }

    /// Convenience constructor for a depthwise convolution.
    #[must_use]
    pub fn dwconv2d(
        name: impl Into<String>,
        input: FeatureMap,
        kernel: (usize, usize),
        stride: (usize, usize),
        padding: (usize, usize),
    ) -> Self {
        Self::new(
            name,
            OpKind::Conv2d {
                in_ch: input.c,
                out_ch: input.c,
                kernel,
                stride,
                padding,
                groups: input.c,
            },
            input,
        )
    }

    /// Convenience constructor for a dense layer producing `out_features`.
    ///
    /// The GEMM `m` extent is the token count (`input.h * input.w`) and `k`
    /// the input features (`input.c`).
    #[must_use]
    pub fn dense(name: impl Into<String>, input: FeatureMap, out_features: usize) -> Self {
        let m = input.n * input.h * input.w;
        Self::new(
            name,
            OpKind::Dense {
                m,
                k: input.c,
                n: out_features,
            },
            input,
        )
    }

    /// Convenience constructor for an activation layer.
    #[must_use]
    pub fn activation(name: impl Into<String>, input: FeatureMap, kind: ActKind) -> Self {
        Self::new(name, OpKind::Activation(kind), input)
    }

    /// Output feature map implied by the operator and input shape.
    #[must_use]
    pub fn output(&self) -> FeatureMap {
        let i = self.input;
        match self.op {
            OpKind::Conv2d {
                out_ch,
                kernel,
                stride,
                padding,
                ..
            } => {
                let oh = conv_out(i.h, kernel.0, stride.0, padding.0);
                let ow = conv_out(i.w, kernel.1, stride.1, padding.1);
                FeatureMap::nchw(i.n, out_ch, oh, ow)
            }
            OpKind::Dense { m, n, .. } => {
                if m == 1 {
                    FeatureMap::nchw(i.n, n, 1, 1)
                } else {
                    FeatureMap::seq(m, n)
                }
            }
            OpKind::BatchedMatMul { batch, m, n, .. } => FeatureMap::seq(m, batch * n),
            OpKind::Pool {
                kind: PoolKind::GlobalAvg,
                ..
            } => FeatureMap::nchw(i.n, i.c, 1, 1),
            OpKind::Pool { kernel, stride, .. } => {
                let oh = conv_out(i.h, kernel.0, stride.0, 0).max(1);
                let ow = conv_out(i.w, kernel.1, stride.1, 0).max(1);
                FeatureMap::nchw(i.n, i.c, oh, ow)
            }
            OpKind::Activation(_)
            | OpKind::BatchNorm
            | OpKind::LayerNorm
            | OpKind::Softmax
            | OpKind::EltwiseAdd => i,
        }
    }

    /// Total floating-point operations (multiply and add counted separately).
    #[must_use]
    pub fn flops(&self) -> f64 {
        let out = self.output();
        match self.op {
            OpKind::Conv2d {
                in_ch,
                kernel,
                groups,
                ..
            } => 2.0 * out.elems() as f64 * (in_ch / groups) as f64 * (kernel.0 * kernel.1) as f64,
            OpKind::Dense { m, k, n } => 2.0 * m as f64 * k as f64 * n as f64,
            OpKind::BatchedMatMul { batch, m, k, n } => {
                2.0 * batch as f64 * m as f64 * k as f64 * n as f64
            }
            OpKind::Pool {
                kind: PoolKind::GlobalAvg,
                ..
            } => self.input.elems() as f64,
            OpKind::Pool { kernel, .. } => out.elems() as f64 * (kernel.0 * kernel.1) as f64,
            OpKind::Activation(ActKind::Relu | ActKind::Relu6) => out.elems() as f64,
            OpKind::Activation(ActKind::Sigmoid | ActKind::Swish) => 4.0 * out.elems() as f64,
            OpKind::Activation(ActKind::Gelu) => 8.0 * out.elems() as f64,
            OpKind::BatchNorm => 2.0 * out.elems() as f64,
            OpKind::LayerNorm => 8.0 * out.elems() as f64,
            OpKind::Softmax => 5.0 * out.elems() as f64,
            OpKind::EltwiseAdd => out.elems() as f64,
        }
    }

    /// Bytes of model parameters read by the layer.
    #[must_use]
    pub fn weight_bytes(&self) -> f64 {
        let e = self.dtype.bytes() as f64;
        match self.op {
            OpKind::Conv2d {
                in_ch,
                out_ch,
                kernel,
                groups,
                ..
            } => (out_ch * (in_ch / groups) * kernel.0 * kernel.1) as f64 * e,
            OpKind::Dense { k, n, .. } => (k * n) as f64 * e,
            // Attention GEMMs multiply two activation tensors; no weights.
            OpKind::BatchedMatMul { .. } => 0.0,
            // Scale + shift per channel.
            OpKind::BatchNorm | OpKind::LayerNorm => 2.0 * self.input.c as f64 * e,
            _ => 0.0,
        }
    }

    /// Bytes of input activations read.
    #[must_use]
    pub fn input_bytes(&self) -> f64 {
        let base = self.input.bytes(self.dtype) as f64;
        match self.op {
            // The second matmul operand is also an input activation.
            OpKind::BatchedMatMul { batch, k, n, .. } => {
                base + (batch * k * n * self.dtype.bytes()) as f64
            }
            // Residual add reads two tensors.
            OpKind::EltwiseAdd => 2.0 * base,
            _ => base,
        }
    }

    /// Bytes of output activations written.
    #[must_use]
    pub fn output_bytes(&self) -> f64 {
        self.output().bytes(self.dtype) as f64
    }

    /// Total bytes touched assuming perfect reuse (weights + in + out once).
    #[must_use]
    pub fn total_bytes(&self) -> f64 {
        self.weight_bytes() + self.input_bytes() + self.output_bytes()
    }

    /// FLOPs per byte at perfect reuse — the roofline operational intensity.
    #[must_use]
    pub fn arithmetic_intensity(&self) -> f64 {
        self.flops() / self.total_bytes().max(1.0)
    }
}

/// Output extent of a strided, padded sliding window.
fn conv_out(extent: usize, kernel: usize, stride: usize, padding: usize) -> usize {
    assert!(stride > 0, "stride must be positive");
    assert!(
        extent + 2 * padding >= kernel,
        "window larger than padded input (extent {extent}, kernel {kernel}, padding {padding})"
    );
    (extent + 2 * padding - kernel) / stride + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn res2_conv() -> Layer {
        Layer::conv2d(
            "res2",
            FeatureMap::nchw(1, 64, 56, 56),
            64,
            (3, 3),
            (1, 1),
            (1, 1),
        )
    }

    #[test]
    fn conv_output_shape_same_padding() {
        let out = res2_conv().output();
        assert_eq!(out, FeatureMap::nchw(1, 64, 56, 56));
    }

    #[test]
    fn conv_output_shape_strided() {
        let l = Layer::conv2d(
            "stem",
            FeatureMap::nchw(1, 3, 224, 224),
            64,
            (7, 7),
            (2, 2),
            (3, 3),
        );
        assert_eq!(l.output(), FeatureMap::nchw(1, 64, 112, 112));
    }

    #[test]
    fn conv_flops_match_closed_form() {
        // 2 * OC*OH*OW * IC*KH*KW
        let expected = 2.0 * (64 * 56 * 56) as f64 * (64 * 3 * 3) as f64;
        assert_eq!(res2_conv().flops(), expected);
    }

    #[test]
    fn depthwise_conv_divides_flops_by_channels() {
        let dense = Layer::conv2d(
            "d",
            FeatureMap::nchw(1, 144, 56, 56),
            144,
            (3, 3),
            (1, 1),
            (1, 1),
        );
        let dw = Layer::dwconv2d(
            "dw",
            FeatureMap::nchw(1, 144, 56, 56),
            (3, 3),
            (1, 1),
            (1, 1),
        );
        assert!((dense.flops() / dw.flops() - 144.0).abs() < 1e-9);
        assert_eq!(dw.weight_bytes(), (144 * 3 * 3 * 4) as f64);
    }

    #[test]
    fn dense_flops_and_weights() {
        let l = Layer::dense("fc", FeatureMap::nchw(1, 2048, 1, 1), 1000);
        assert_eq!(l.flops(), 2.0 * 2048.0 * 1000.0);
        assert_eq!(l.weight_bytes(), 2048.0 * 1000.0 * 4.0);
        assert_eq!(l.output(), FeatureMap::nchw(1, 1000, 1, 1));
    }

    #[test]
    fn seq_dense_keeps_token_extent() {
        let l = Layer::dense("qkv", FeatureMap::seq(384, 1024), 1024);
        assert_eq!(l.output(), FeatureMap::seq(384, 1024));
        assert_eq!(l.flops(), 2.0 * 384.0 * 1024.0 * 1024.0);
    }

    #[test]
    fn batched_matmul_accounting() {
        let l = Layer::new(
            "scores",
            OpKind::BatchedMatMul {
                batch: 16,
                m: 384,
                k: 64,
                n: 384,
            },
            FeatureMap::seq(384, 1024),
        );
        assert_eq!(l.flops(), 2.0 * 16.0 * 384.0 * 64.0 * 384.0);
        assert_eq!(l.weight_bytes(), 0.0);
        assert!(l.input_bytes() > FeatureMap::seq(384, 1024).bytes(DType::F32) as f64);
    }

    #[test]
    fn pooling_shapes() {
        let p = Layer::new(
            "pool",
            OpKind::Pool {
                kind: PoolKind::Max,
                kernel: (3, 3),
                stride: (2, 2),
            },
            FeatureMap::nchw(1, 64, 112, 112),
        );
        // MLPerf ResNet uses pad-1 3x3/2 pools; ours is unpadded: (112-3)/2+1.
        assert_eq!(p.output().h, 55);
        let g = Layer::new(
            "gap",
            OpKind::Pool {
                kind: PoolKind::GlobalAvg,
                kernel: (1, 1),
                stride: (1, 1),
            },
            FeatureMap::nchw(1, 2048, 7, 7),
        );
        assert_eq!(g.output(), FeatureMap::nchw(1, 2048, 1, 1));
    }

    #[test]
    fn residual_add_reads_two_inputs() {
        let a = Layer::new("add", OpKind::EltwiseAdd, FeatureMap::nchw(1, 256, 56, 56));
        assert_eq!(a.input_bytes(), 2.0 * (256 * 56 * 56 * 4) as f64);
    }

    #[test]
    fn arithmetic_intensity_orders_conv_above_eltwise() {
        let conv = res2_conv();
        let add = Layer::new("add", OpKind::EltwiseAdd, FeatureMap::nchw(1, 64, 56, 56));
        assert!(conv.arithmetic_intensity() > 10.0 * add.arithmetic_intensity());
    }

    #[test]
    #[should_panic(expected = "in_ch must match")]
    fn conv_channel_mismatch_panics() {
        let _ = Layer::new(
            "bad",
            OpKind::Conv2d {
                in_ch: 32,
                out_ch: 64,
                kernel: (1, 1),
                stride: (1, 1),
                padding: (0, 0),
                groups: 1,
            },
            FeatureMap::nchw(1, 64, 8, 8),
        );
    }
}
