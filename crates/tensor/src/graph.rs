//! Linearized model graphs.
//!
//! The schedulers in the paper treat a DNN as an ordered layer sequence
//! (branching subgraphs such as inception cells are linearized in
//! topological order, which is how a single-query execution engine runs them
//! anyway). [`ModelGraph`] is that sequence plus aggregate accounting.

use serde::{Deserialize, Serialize};

use crate::fusion::{fuse_layers, FusedUnit};
use crate::layer::Layer;

/// An inference model: a named, ordered sequence of layers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelGraph {
    /// Model name (e.g. `resnet50`).
    pub name: String,
    /// Layers in execution order.
    pub layers: Vec<Layer>,
}

impl ModelGraph {
    /// Creates a graph from a layer sequence.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty — an empty model cannot be scheduled.
    #[must_use]
    pub fn new(name: impl Into<String>, layers: Vec<Layer>) -> Self {
        assert!(
            !layers.is_empty(),
            "a model must contain at least one layer"
        );
        Self {
            name: name.into(),
            layers,
        }
    }

    /// Number of layers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the graph is empty (never true for a constructed graph).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Total FLOPs over all layers.
    #[must_use]
    pub fn total_flops(&self) -> f64 {
        self.layers.iter().map(Layer::flops).sum()
    }

    /// Total weight bytes (the model's parameter size).
    #[must_use]
    pub fn total_weight_bytes(&self) -> f64 {
        self.layers.iter().map(Layer::weight_bytes).sum()
    }

    /// Applies the standard fusion patterns and returns the fused units that
    /// the compiler schedules.
    #[must_use]
    pub fn fused_units(&self) -> Vec<FusedUnit> {
        fuse_layers(&self.layers)
    }

    /// Count of compute-intensive (schedulable) layers.
    #[must_use]
    pub fn compute_layer_count(&self) -> usize {
        self.layers
            .iter()
            .filter(|l| l.op.is_compute_intensive())
            .count()
    }
}

impl std::fmt::Display for ModelGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} layers, {:.2} GFLOPs, {:.1} MB weights",
            self.name,
            self.len(),
            self.total_flops() / 1e9,
            self.total_weight_bytes() / 1e6
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::ActKind;
    use crate::shape::FeatureMap;

    fn tiny_model() -> ModelGraph {
        let fm = FeatureMap::nchw(1, 3, 32, 32);
        let c1 = Layer::conv2d("c1", fm, 16, (3, 3), (1, 1), (1, 1));
        let r1 = Layer::activation("r1", c1.output(), ActKind::Relu);
        let c2 = Layer::conv2d("c2", c1.output(), 32, (3, 3), (2, 2), (1, 1));
        ModelGraph::new("tiny", vec![c1, r1, c2])
    }

    #[test]
    fn aggregates_are_sums() {
        let m = tiny_model();
        let f: f64 = m.layers.iter().map(Layer::flops).sum();
        assert!((m.total_flops() - f).abs() < 1e-9);
        assert_eq!(m.compute_layer_count(), 2);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn fused_units_cover_all_layers() {
        let m = tiny_model();
        let units = m.fused_units();
        let covered: usize = units.iter().map(|u| 1 + u.epilogue.len()).sum();
        assert_eq!(covered, m.len());
        assert_eq!(units.len(), 2);
    }

    #[test]
    fn display_mentions_name_and_sizes() {
        let s = tiny_model().to_string();
        assert!(s.contains("tiny"));
        assert!(s.contains("layers"));
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_model_panics() {
        let _ = ModelGraph::new("empty", vec![]);
    }
}
