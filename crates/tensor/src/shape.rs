//! Tensor shapes and element types.

use serde::{Deserialize, Serialize};

/// Element type of a tensor.
///
/// The reproduction runs everything in `F32` (the paper evaluates FP32 AVX2
/// kernels), but the byte accounting is generic so INT8/BF16 studies remain
/// possible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum DType {
    /// 32-bit IEEE-754 float (default; matches the paper's AVX2 FP32 setup).
    #[default]
    F32,
    /// 16-bit brain float.
    Bf16,
    /// 8-bit signed integer.
    I8,
}

impl DType {
    /// Size of one element in bytes.
    #[must_use]
    pub const fn bytes(self) -> usize {
        match self {
            DType::F32 => 4,
            DType::Bf16 => 2,
            DType::I8 => 1,
        }
    }

    /// Number of lanes one 256-bit AVX2 vector register holds for this type.
    #[must_use]
    pub const fn simd_lanes(self) -> usize {
        32 / self.bytes()
    }
}

/// A 4-dimensional feature map in NCHW layout.
///
/// `n` is the batch size (always 1 for latency-critical inference queries in
/// the paper), `c` the channel count, and `h`/`w` the spatial extents.
/// Sequence tensors (BERT) are encoded as `n = 1, c = hidden, h = seq_len,
/// w = 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FeatureMap {
    /// Batch size.
    pub n: usize,
    /// Channels.
    pub c: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
}

impl FeatureMap {
    /// Creates a feature map from NCHW extents.
    ///
    /// # Panics
    ///
    /// Panics if any extent is zero; a degenerate tensor is always a model
    /// construction bug.
    #[must_use]
    pub fn nchw(n: usize, c: usize, h: usize, w: usize) -> Self {
        assert!(
            n > 0 && c > 0 && h > 0 && w > 0,
            "feature map extents must be positive"
        );
        Self { n, c, h, w }
    }

    /// Creates a sequence-shaped map (`seq_len` tokens of `hidden` features).
    #[must_use]
    pub fn seq(seq_len: usize, hidden: usize) -> Self {
        Self::nchw(1, hidden, seq_len, 1)
    }

    /// Total number of elements.
    #[must_use]
    pub const fn elems(&self) -> usize {
        self.n * self.c * self.h * self.w
    }

    /// Total size in bytes for the given element type.
    #[must_use]
    pub const fn bytes(&self, dtype: DType) -> usize {
        self.elems() * dtype.bytes()
    }
}

impl std::fmt::Display for FeatureMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}x{}x{}", self.n, self.c, self.h, self.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_bytes_and_lanes() {
        assert_eq!(DType::F32.bytes(), 4);
        assert_eq!(DType::F32.simd_lanes(), 8);
        assert_eq!(DType::Bf16.simd_lanes(), 16);
        assert_eq!(DType::I8.simd_lanes(), 32);
    }

    #[test]
    fn feature_map_accounting() {
        let fm = FeatureMap::nchw(1, 64, 56, 56);
        assert_eq!(fm.elems(), 64 * 56 * 56);
        assert_eq!(fm.bytes(DType::F32), 64 * 56 * 56 * 4);
        assert_eq!(fm.to_string(), "1x64x56x56");
    }

    #[test]
    fn seq_shape_encodes_tokens_as_height() {
        let fm = FeatureMap::seq(384, 1024);
        assert_eq!(fm.h, 384);
        assert_eq!(fm.c, 1024);
        assert_eq!(fm.elems(), 384 * 1024);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_extent_panics() {
        let _ = FeatureMap::nchw(1, 0, 4, 4);
    }
}
