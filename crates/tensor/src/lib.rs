//! Tensor operator IR for the VELTAIR reproduction.
//!
//! This crate models deep-learning layers at the *architectural* level: for
//! every operator we track shapes, floating-point work, and bytes moved, and
//! we expose the perfectly-nested loop structure that the compiler crate
//! tiles, parallelizes, and unrolls. No numerical tensors are materialized —
//! multi-tenant scheduling and compilation only ever consume these profiles,
//! exactly as the paper's scheduler consumes TVM's layer descriptions.
//!
//! # Example
//!
//! ```
//! use veltair_tensor::{FeatureMap, Layer, OpKind};
//!
//! // A ResNet-50 stage-2 3x3 convolution.
//! let conv = Layer::conv2d("res2_conv3x3", FeatureMap::nchw(1, 64, 56, 56), 64, (3, 3), (1, 1), (1, 1));
//! assert_eq!(conv.output().c, 64);
//! assert!(conv.flops() > 0.0);
//! ```

pub mod fusion;
pub mod graph;
pub mod layer;
pub mod loopnest;
pub mod ops;
pub mod schedule;
pub mod shape;

pub use fusion::{fuse_layers, fuse_layers_at_level, fusion_cap_for_level, FusedUnit};
pub use graph::ModelGraph;
pub use layer::Layer;
pub use loopnest::{loop_nest, GemmView, LoopDim, LoopKind, LoopNest};
pub use ops::{ActKind, OpKind, PoolKind};
pub use schedule::{tile_ladder, Schedule};
pub use shape::{DType, FeatureMap};
