//! Operator kinds and their parameters.

use serde::{Deserialize, Serialize};

/// Pooling flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolKind {
    /// Sliding-window maximum.
    Max,
    /// Sliding-window average.
    Avg,
    /// Global average pooling (collapses the spatial extent to 1x1).
    GlobalAvg,
}

/// Element-wise activation flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActKind {
    /// Rectified linear unit.
    Relu,
    /// Gaussian error linear unit (BERT).
    Gelu,
    /// Logistic sigmoid.
    Sigmoid,
    /// x * sigmoid(x) (EfficientNet).
    Swish,
    /// Hard-swish / relu6 family used by MobileNet.
    Relu6,
}

/// The operator executed by a [`crate::Layer`].
///
/// Only the compute-intensive operators (`Conv2d`, `Dense`, `BatchedMatMul`)
/// own a tunable loop nest; the remaining operators are light element-wise or
/// reduction epilogues that the compiler fuses into their producer whenever a
/// fusion pattern applies (see [`crate::fusion`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// 2-D convolution over NCHW input.
    Conv2d {
        /// Input channels.
        in_ch: usize,
        /// Output channels.
        out_ch: usize,
        /// Kernel height and width.
        kernel: (usize, usize),
        /// Stride along height and width.
        stride: (usize, usize),
        /// Zero padding along height and width.
        padding: (usize, usize),
        /// Channel groups; `groups == in_ch == out_ch` is a depthwise conv.
        groups: usize,
    },
    /// Dense (fully-connected) layer computing an `m x k` by `k x n` GEMM.
    Dense {
        /// Rows of the activation matrix (batch x tokens).
        m: usize,
        /// Contraction extent.
        k: usize,
        /// Output features.
        n: usize,
    },
    /// Batched matrix multiply (attention score / context GEMMs in BERT).
    BatchedMatMul {
        /// Number of independent GEMMs (e.g. attention heads).
        batch: usize,
        /// Rows per GEMM.
        m: usize,
        /// Contraction extent per GEMM.
        k: usize,
        /// Columns per GEMM.
        n: usize,
    },
    /// Spatial pooling.
    Pool {
        /// Pooling flavour.
        kind: PoolKind,
        /// Window extent (ignored for `GlobalAvg`).
        kernel: (usize, usize),
        /// Window stride (ignored for `GlobalAvg`).
        stride: (usize, usize),
    },
    /// Element-wise activation.
    Activation(ActKind),
    /// Per-channel affine normalization (inference-time batch norm).
    BatchNorm,
    /// Per-token layer normalization (BERT).
    LayerNorm,
    /// Row-wise softmax (attention probabilities / classifier head).
    Softmax,
    /// Element-wise residual addition.
    EltwiseAdd,
}

impl OpKind {
    /// Whether this operator owns a tunable loop nest (conv / GEMM family).
    ///
    /// Non-compute-intensive operators are either fused into a producer or
    /// executed with a fixed streaming schedule.
    #[must_use]
    pub fn is_compute_intensive(&self) -> bool {
        matches!(
            self,
            OpKind::Conv2d { .. } | OpKind::Dense { .. } | OpKind::BatchedMatMul { .. }
        )
    }

    /// Whether the operator is a cheap element-wise epilogue that standard
    /// fusion patterns (conv-relu, conv-bn-relu, dense-gelu, ...) can absorb.
    #[must_use]
    pub fn is_fusable_epilogue(&self) -> bool {
        matches!(
            self,
            OpKind::Activation(_) | OpKind::BatchNorm | OpKind::EltwiseAdd | OpKind::LayerNorm
        )
    }

    /// Short human-readable mnemonic (used in traces and figure outputs).
    #[must_use]
    pub fn mnemonic(&self) -> &'static str {
        match self {
            OpKind::Conv2d { groups, in_ch, .. } if *groups == *in_ch && *groups > 1 => "dwconv",
            OpKind::Conv2d { .. } => "conv",
            OpKind::Dense { .. } => "dense",
            OpKind::BatchedMatMul { .. } => "bmm",
            OpKind::Pool { .. } => "pool",
            OpKind::Activation(_) => "act",
            OpKind::BatchNorm => "bn",
            OpKind::LayerNorm => "ln",
            OpKind::Softmax => "softmax",
            OpKind::EltwiseAdd => "add",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_intensive_classification() {
        let conv = OpKind::Conv2d {
            in_ch: 64,
            out_ch: 64,
            kernel: (3, 3),
            stride: (1, 1),
            padding: (1, 1),
            groups: 1,
        };
        assert!(conv.is_compute_intensive());
        assert!(OpKind::Dense {
            m: 1,
            k: 2048,
            n: 1000
        }
        .is_compute_intensive());
        assert!(OpKind::BatchedMatMul {
            batch: 16,
            m: 384,
            k: 64,
            n: 384
        }
        .is_compute_intensive());
        assert!(!OpKind::Softmax.is_compute_intensive());
        assert!(!OpKind::Activation(ActKind::Relu).is_compute_intensive());
    }

    #[test]
    fn epilogue_classification() {
        assert!(OpKind::Activation(ActKind::Relu).is_fusable_epilogue());
        assert!(OpKind::BatchNorm.is_fusable_epilogue());
        assert!(OpKind::EltwiseAdd.is_fusable_epilogue());
        assert!(!OpKind::Softmax.is_fusable_epilogue());
        assert!(!OpKind::Pool {
            kind: PoolKind::Max,
            kernel: (2, 2),
            stride: (2, 2)
        }
        .is_fusable_epilogue());
    }

    #[test]
    fn depthwise_mnemonic() {
        let dw = OpKind::Conv2d {
            in_ch: 144,
            out_ch: 144,
            kernel: (3, 3),
            stride: (1, 1),
            padding: (1, 1),
            groups: 144,
        };
        assert_eq!(dw.mnemonic(), "dwconv");
    }
}
