//! Concrete schedules over GEMM-normalized loop nests.
//!
//! Schedules live in the tensor IR crate (not the compiler) because they
//! are a pure function of the loop nest: tile extents and an unroll factor
//! over a [`GemmView`]. The compiler's auto-scheduler searches this space
//! and `veltair-costmodel` extracts learned-cost-model features from it;
//! neither needs the other to describe *what* a schedule is.

use serde::{Deserialize, Serialize};

use crate::loopnest::GemmView;

/// AVX2 FP32 vector width.
const VEC_LANES: usize = 8;

/// A concrete schedule: tile extents for the three GEMM loops plus the
/// inner-loop unroll factor.
///
/// The paper's two selection metrics derive directly from here:
/// *parallelism* = parallel chunk count x unroll factor (§4.1's
/// "multiplying the loop unrolling factor and parallelization factor"),
/// and *locality* ("blocking size") = bytes of one worker's tile working
/// set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Schedule {
    /// Tile extent along `m` (rows of A / C).
    pub tm: usize,
    /// Tile extent along `n` (columns of B / C).
    pub tn: usize,
    /// Tile extent along the reduction `k`.
    pub tk: usize,
    /// Inner-loop unroll factor.
    pub unroll: usize,
}

impl Schedule {
    /// Creates a schedule, clamping tiles to the loop extents.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    #[must_use]
    pub fn new(g: &GemmView, tm: usize, tn: usize, tk: usize, unroll: usize) -> Self {
        assert!(
            tm > 0 && tn > 0 && tk > 0 && unroll > 0,
            "schedule parameters must be positive"
        );
        Self {
            tm: tm.min(g.m),
            tn: tn.min(g.n),
            tk: tk.min(g.k),
            unroll,
        }
    }

    /// Number of independent parallel chunks (outer tiles x batch).
    #[must_use]
    pub fn parallel_chunks(&self, g: &GemmView) -> u32 {
        let chunks = g.batch * div_ceil(g.m, self.tm) * div_ceil(g.n, self.tn);
        u32::try_from(chunks.min(u32::MAX as usize)).expect("clamped above")
    }

    /// The paper's parallelism metric: chunk count x unroll factor.
    #[must_use]
    pub fn parallelism(&self, g: &GemmView) -> f64 {
        f64::from(self.parallel_chunks(g)) * self.unroll as f64
    }

    /// The paper's locality metric ("blocking size"): bytes of one worker's
    /// tile working set (A tile + B tile + C tile).
    #[must_use]
    pub fn locality_bytes(&self, g: &GemmView) -> f64 {
        ((self.tm * self.tk + self.tk * self.tn + self.tm * self.tn) * g.elem_bytes) as f64
    }

    /// Sustained fraction of peak FLOPs for this schedule's inner loop:
    /// vectorization x unroll quality x tile amortization x boundary waste.
    #[must_use]
    pub fn compute_efficiency(&self, g: &GemmView) -> f64 {
        // Vector utilization: the wider of the two output-tile extents is
        // vectorized; short extents waste lanes.
        let vec_extent = self.tm.max(self.tn);
        let eff_vec = (vec_extent as f64 / VEC_LANES as f64).min(1.0);
        // Unroll quality: too little exposes loop overhead, too much spills
        // registers / thrashes the uop cache.
        let eff_unroll = match self.unroll {
            1 => 0.70,
            2 => 0.80,
            4 => 0.90,
            8 => 1.00,
            16 => 0.97,
            _ => 0.88,
        };
        // Tile amortization of prologue/pointer math.
        let work = (self.tm * self.tn * self.tk) as f64;
        let eff_tile = work / (work + 512.0);
        // Partial boundary tiles run at reduced SIMD utilization.
        let eff_boundary = 0.75 + 0.25 * full_frac(g.m, self.tm) * full_frac(g.n, self.tn);
        // Reduction-depth amortization: a microkernel accumulates one
        // output tile over `tk` FMA steps, so short chains pay the pipeline
        // ramp and the C-tile load/store on every chunk. This is why
        // 1x1 convolutions and depthwise layers run far below peak on real
        // CPUs while deep 3x3 reductions approach it — the heterogeneity
        // behind the paper's conflict-prone layers (Fig. 4a/4b).
        let tk = self.tk as f64;
        let eff_reduction = tk / (tk + 64.0);
        (0.95 * eff_vec * eff_unroll * eff_tile * eff_boundary * eff_reduction).clamp(0.02, 0.95)
    }
}

impl std::fmt::Display for Schedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "tm{}xtn{}xtk{}u{}",
            self.tm, self.tn, self.tk, self.unroll
        )
    }
}

/// Fraction of a dimension covered by full tiles.
fn full_frac(extent: usize, tile: usize) -> f64 {
    if tile >= extent {
        1.0
    } else {
        ((extent / tile) * tile) as f64 / extent as f64
    }
}

fn div_ceil(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}

/// The tile ladder for a loop extent: powers of two up to the extent, plus
/// the extent itself.
#[must_use]
pub fn tile_ladder(extent: usize) -> Vec<usize> {
    let mut ladder = Vec::new();
    let mut t = 1;
    while t < extent {
        ladder.push(t);
        t *= 2;
    }
    ladder.push(extent);
    ladder
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Layer;
    use crate::shape::FeatureMap;

    fn gemm() -> GemmView {
        // The paper's Fig. 6 exemplar conv: 14x14 map, 256 channels, 3x3.
        let l = Layer::conv2d(
            "c",
            FeatureMap::nchw(1, 256, 14, 14),
            256,
            (3, 3),
            (1, 1),
            (1, 1),
        );
        GemmView::of(&l).unwrap()
    }

    #[test]
    fn ladder_contains_extremes() {
        assert_eq!(tile_ladder(1), vec![1]);
        assert_eq!(tile_ladder(8), vec![1, 2, 4, 8]);
        assert_eq!(tile_ladder(196), vec![1, 2, 4, 8, 16, 32, 64, 128, 196]);
    }

    #[test]
    fn chunks_shrink_with_bigger_tiles() {
        let g = gemm();
        let fine = Schedule::new(&g, 7, 16, 256, 4);
        let coarse = Schedule::new(&g, 98, 128, 256, 4);
        assert!(fine.parallel_chunks(&g) > coarse.parallel_chunks(&g));
    }

    #[test]
    fn locality_grows_with_bigger_tiles() {
        let g = gemm();
        let fine = Schedule::new(&g, 7, 16, 64, 4);
        let coarse = Schedule::new(&g, 98, 128, 1024, 4);
        assert!(coarse.locality_bytes(&g) > 10.0 * fine.locality_bytes(&g));
    }

    #[test]
    fn tiles_are_clamped_to_extents() {
        let g = gemm();
        let s = Schedule::new(&g, 10_000, 10_000, 10_000, 8);
        assert_eq!(s.tm, g.m);
        assert_eq!(s.tn, g.n);
        assert_eq!(s.tk, g.k);
        assert_eq!(s.parallel_chunks(&g), 1);
    }

    #[test]
    fn efficiency_prefers_bigger_tiles_and_unroll_8() {
        let g = gemm();
        let small = Schedule::new(&g, 2, 2, 8, 1);
        let big = Schedule::new(&g, 28, 64, 256, 8);
        assert!(big.compute_efficiency(&g) > small.compute_efficiency(&g));
        let u8 = Schedule::new(&g, 28, 64, 256, 8);
        let u1 = Schedule::new(&g, 28, 64, 256, 1);
        assert!(u8.compute_efficiency(&g) > u1.compute_efficiency(&g));
    }

    #[test]
    fn efficiency_is_bounded() {
        let g = gemm();
        for tm in tile_ladder(g.m) {
            for unroll in [1, 2, 4, 8, 16, 32] {
                let s = Schedule::new(&g, tm, 64, 128, unroll);
                let e = s.compute_efficiency(&g);
                assert!((0.02..=0.95).contains(&e));
            }
        }
    }

    #[test]
    fn parallelism_metric_multiplies_unroll() {
        let g = gemm();
        let s1 = Schedule::new(&g, 14, 32, 256, 1);
        let s8 = Schedule::new(&g, 14, 32, 256, 8);
        assert!((s8.parallelism(&g) - 8.0 * s1.parallelism(&g)).abs() < 1e-9);
    }
}
