//! Randomized invariants of the operator IR.
//!
//! Formerly proptest-based; the hermetic build has no crates.io access,
//! so these run the same properties over seeded random cases (the `rand`
//! shim is deterministic per seed, keeping failures reproducible).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use veltair_tensor::{fuse_layers, ActKind, FeatureMap, GemmView, Layer, OpKind};

const CASES: usize = 128;

fn arb_conv(rng: &mut StdRng) -> Layer {
    let k = *[1usize, 3, 5, 7].choose(rng).unwrap();
    let cin = rng.gen_range(1usize..=512);
    let cout = rng.gen_range(1usize..=512);
    let hw = rng.gen_range(7usize..=112);
    let stride = *[1usize, 2].choose(rng).unwrap();
    Layer::conv2d(
        "conv",
        FeatureMap::nchw(1, cin, hw, hw),
        cout,
        (k, k),
        (stride, stride),
        (k / 2, k / 2),
    )
}

#[test]
fn conv_accounting_is_positive_and_consistent() {
    let mut rng = StdRng::seed_from_u64(0x7e4501);
    for _ in 0..CASES {
        let conv = arb_conv(&mut rng);
        let out = conv.output();
        assert!(out.elems() > 0);
        assert!(conv.flops() > 0.0);
        assert!(conv.weight_bytes() > 0.0);
        // The GEMM view agrees with the layer on FLOPs and weights.
        let g = GemmView::of(&conv).unwrap();
        assert!((g.flops() - conv.flops()).abs() <= 1e-6 * conv.flops());
        assert!((g.b_bytes() - conv.weight_bytes()).abs() < 1e-6);
    }
}

#[test]
fn doubling_output_channels_doubles_flops() {
    let mut rng = StdRng::seed_from_u64(0x7e4502);
    for _ in 0..CASES {
        let conv = arb_conv(&mut rng);
        let OpKind::Conv2d {
            out_ch,
            kernel,
            stride,
            padding,
            ..
        } = conv.op
        else {
            unreachable!()
        };
        let doubled = Layer::conv2d("c2", conv.input, out_ch * 2, kernel, stride, padding);
        assert!((doubled.flops() - 2.0 * conv.flops()).abs() <= 1e-6 * conv.flops());
    }
}

#[test]
fn fusion_conserves_flops_and_covers_layers() {
    let mut rng = StdRng::seed_from_u64(0x7e4503);
    for _ in 0..CASES {
        let n_convs = rng.gen_range(1usize..6);
        let mut layers = Vec::new();
        for _ in 0..n_convs {
            let c = arb_conv(&mut rng);
            let out = c.output();
            layers.push(c);
            if rng.gen_bool(0.5) {
                layers.push(Layer::activation("r", out, ActKind::Relu));
            }
        }
        let units = fuse_layers(&layers);
        let covered: usize = units.iter().map(|u| 1 + u.epilogue.len()).sum();
        assert_eq!(covered, layers.len());
        let sum: f64 = layers.iter().map(Layer::flops).sum();
        let fused: f64 = units.iter().map(|u| u.flops()).sum();
        assert!((sum - fused).abs() <= 1e-9 * sum.max(1.0));
        // Fusion never increases the bytes moved.
        let raw: f64 = layers.iter().map(Layer::total_bytes).sum();
        let after: f64 = units.iter().map(|u| u.total_bytes()).sum();
        assert!(after <= raw + 1e-9);
    }
}

#[test]
fn strided_conv_shrinks_output() {
    let mut rng = StdRng::seed_from_u64(0x7e4504);
    for _ in 0..CASES {
        let conv = arb_conv(&mut rng);
        let out = conv.output();
        assert!(out.h <= conv.input.h);
        assert!(out.w <= conv.input.w);
    }
}
