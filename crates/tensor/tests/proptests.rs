//! Property-based invariants of the operator IR.

use proptest::prelude::*;
use veltair_tensor::{fuse_layers, ActKind, FeatureMap, GemmView, Layer, OpKind};

fn arb_conv() -> impl Strategy<Value = Layer> {
    (
        prop::sample::select(vec![1usize, 3, 5, 7]),
        1usize..=512,
        1usize..=512,
        7usize..=112,
        prop::sample::select(vec![1usize, 2]),
    )
        .prop_map(|(k, cin, cout, hw, stride)| {
            Layer::conv2d(
                "conv",
                FeatureMap::nchw(1, cin, hw, hw),
                cout,
                (k, k),
                (stride, stride),
                (k / 2, k / 2),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn conv_accounting_is_positive_and_consistent(conv in arb_conv()) {
        let out = conv.output();
        prop_assert!(out.elems() > 0);
        prop_assert!(conv.flops() > 0.0);
        prop_assert!(conv.weight_bytes() > 0.0);
        // The GEMM view agrees with the layer on FLOPs and weights.
        let g = GemmView::of(&conv).unwrap();
        prop_assert!((g.flops() - conv.flops()).abs() <= 1e-6 * conv.flops());
        prop_assert!((g.b_bytes() - conv.weight_bytes()).abs() < 1e-6);
    }

    #[test]
    fn doubling_output_channels_doubles_flops(conv in arb_conv()) {
        let OpKind::Conv2d { out_ch, kernel, stride, padding, .. } = conv.op else {
            unreachable!()
        };
        let doubled = Layer::conv2d("c2", conv.input, out_ch * 2, kernel, stride, padding);
        prop_assert!((doubled.flops() - 2.0 * conv.flops()).abs() <= 1e-6 * conv.flops());
    }

    #[test]
    fn fusion_conserves_flops_and_covers_layers(
        convs in prop::collection::vec(arb_conv(), 1..6),
        with_relu in prop::collection::vec(any::<bool>(), 6),
    ) {
        let mut layers = Vec::new();
        for (i, c) in convs.iter().enumerate() {
            let out = c.output();
            layers.push(c.clone());
            if with_relu[i] {
                layers.push(Layer::activation("r", out, ActKind::Relu));
            }
        }
        let units = fuse_layers(&layers);
        let covered: usize = units.iter().map(|u| 1 + u.epilogue.len()).sum();
        prop_assert_eq!(covered, layers.len());
        let sum: f64 = layers.iter().map(Layer::flops).sum();
        let fused: f64 = units.iter().map(|u| u.flops()).sum();
        prop_assert!((sum - fused).abs() <= 1e-9 * sum.max(1.0));
        // Fusion never increases the bytes moved.
        let raw: f64 = layers.iter().map(Layer::total_bytes).sum();
        let after: f64 = units.iter().map(|u| u.total_bytes()).sum();
        prop_assert!(after <= raw + 1e-9);
    }

    #[test]
    fn strided_conv_shrinks_output(conv in arb_conv()) {
        let out = conv.output();
        prop_assert!(out.h <= conv.input.h);
        prop_assert!(out.w <= conv.input.w);
    }
}
