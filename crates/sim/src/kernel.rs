//! The execution profile of a compiled kernel (one code version of a layer).

use serde::{Deserialize, Serialize};

/// Architectural profile of one compiled implementation of a layer.
///
/// Produced by the compiler crate from a concrete schedule; consumed by
/// [`crate::execute`]. The footprint and traffic fields encode the kernel's
/// cache behaviour:
///
/// * `footprint_base_bytes` — working set shared by all workers (e.g. the
///   weight panel of the current reduction tile);
/// * `footprint_per_core_bytes` — per-worker tile working set (the paper's
///   "blocking size", i.e. locality);
/// * `min_traffic_bytes` — DRAM traffic when the working set is fully
///   L3-resident (each operand streams from memory once);
/// * `spill_traffic_bytes` — DRAM traffic when the kernel gets no L3 at all
///   and every cross-tile reuse becomes a refetch.
///
/// A high-locality schedule has a large footprint and a moderate spill
/// penalty it *will* pay under contention; a high-parallelism small-tile
/// schedule has a tiny footprint that fits even a sliver of cache, so its
/// (nominally enormous) spill traffic never materializes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelProfile {
    /// Floating point operations executed.
    pub flops: f64,
    /// Fraction of per-core peak FLOPs the inner loop sustains, in `(0, 1]`.
    pub compute_efficiency: f64,
    /// Number of independent parallel work chunks the schedule exposes.
    /// Cores beyond this count are useless to the kernel.
    pub parallel_chunks: u32,
    /// Worker-shared L3-resident bytes (weight panel etc.).
    pub footprint_base_bytes: f64,
    /// Additional L3-resident bytes per active worker.
    pub footprint_per_core_bytes: f64,
    /// DRAM traffic with full cache residency, bytes.
    pub min_traffic_bytes: f64,
    /// DRAM traffic with zero cache residency, bytes.
    pub spill_traffic_bytes: f64,
}

impl KernelProfile {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant:
    /// non-finite or negative fields, zero chunks, efficiency outside
    /// `(0, 1]`, or `spill_traffic < min_traffic`.
    pub fn validate(&self) -> Result<(), String> {
        let finite = [
            self.flops,
            self.compute_efficiency,
            self.footprint_base_bytes,
            self.footprint_per_core_bytes,
            self.min_traffic_bytes,
            self.spill_traffic_bytes,
        ];
        if finite.iter().any(|v| !v.is_finite() || *v < 0.0) {
            return Err("kernel profile fields must be finite and non-negative".into());
        }
        if self.parallel_chunks == 0 {
            return Err("kernel must expose at least one parallel chunk".into());
        }
        if !(self.compute_efficiency > 0.0 && self.compute_efficiency <= 1.0) {
            return Err(format!(
                "compute efficiency must be in (0,1], got {}",
                self.compute_efficiency
            ));
        }
        if self.spill_traffic_bytes + 1e-9 < self.min_traffic_bytes {
            return Err("spill traffic cannot be below resident traffic".into());
        }
        Ok(())
    }

    /// The L3-resident working set when `cores` workers are active.
    #[must_use]
    pub fn footprint_bytes(&self, cores: u32) -> f64 {
        let active = f64::from(cores.min(self.parallel_chunks));
        self.footprint_base_bytes + self.footprint_per_core_bytes * active
    }

    /// DRAM traffic in bytes for `cores` active workers given `avail_cache`
    /// bytes of effective L3.
    ///
    /// Fully resident footprints pay only `min_traffic`; as the available
    /// share shrinks below the footprint, the would-be-cached reuse traffic
    /// spills proportionally to the unfitting fraction.
    #[must_use]
    pub fn traffic_bytes(&self, cores: u32, avail_cache: f64) -> f64 {
        let footprint = self.footprint_bytes(cores);
        let spill_frac = if footprint <= avail_cache || footprint == 0.0 {
            0.0
        } else {
            (1.0 - avail_cache.max(0.0) / footprint).clamp(0.0, 1.0)
        };
        self.min_traffic_bytes + (self.spill_traffic_bytes - self.min_traffic_bytes) * spill_frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> KernelProfile {
        KernelProfile {
            flops: 1e9,
            compute_efficiency: 0.5,
            parallel_chunks: 64,
            footprint_base_bytes: 4.0e6,
            footprint_per_core_bytes: 1.5e6,
            min_traffic_bytes: 10.0e6,
            spill_traffic_bytes: 200.0e6,
        }
    }

    #[test]
    fn footprint_scales_with_workers_up_to_chunks() {
        let p = profile();
        assert_eq!(p.footprint_bytes(1), 4.0e6 + 1.5e6);
        assert_eq!(p.footprint_bytes(16), 4.0e6 + 24.0e6);
        // Saturates at parallel_chunks workers.
        assert_eq!(p.footprint_bytes(128), p.footprint_bytes(64));
    }

    #[test]
    fn resident_footprint_pays_min_traffic() {
        let p = profile();
        assert_eq!(p.traffic_bytes(16, 256.0e6), 10.0e6);
        assert_eq!(p.traffic_bytes(16, p.footprint_bytes(16)), 10.0e6);
    }

    #[test]
    fn zero_cache_pays_full_spill() {
        let p = profile();
        assert!((p.traffic_bytes(16, 0.0) - 200.0e6).abs() < 1.0);
    }

    #[test]
    fn traffic_is_monotone_in_cache() {
        let p = profile();
        let mut last = f64::INFINITY;
        for c in [0.0, 5.0e6, 10.0e6, 20.0e6, 28.0e6, 100.0e6] {
            let t = p.traffic_bytes(16, c);
            assert!(t <= last + 1e-9, "traffic must not grow with more cache");
            last = t;
        }
    }

    #[test]
    fn validation_catches_bad_profiles() {
        let mut p = profile();
        assert!(p.validate().is_ok());
        p.parallel_chunks = 0;
        assert!(p.validate().is_err());
        p = profile();
        p.compute_efficiency = 0.0;
        assert!(p.validate().is_err());
        p = profile();
        p.spill_traffic_bytes = 1.0;
        assert!(p.validate().is_err());
        p = profile();
        p.flops = f64::NAN;
        assert!(p.validate().is_err());
    }
}
