//! Shared-resource interference: what co-runners take, what a kernel feels.

use serde::{Deserialize, Serialize};

use crate::machine::MachineConfig;

/// Interference experienced by a kernel: the fraction of each shared
/// resource already consumed by co-running tenants.
///
/// The paper's scalar "interference pressure level" (§4.3) is the average
/// slowdown co-runners induce; [`Interference::level`] builds the canonical
/// pressure point where both shared resources are equally loaded, which is
/// what the extended auto-scheduler's background layers produce (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Interference {
    /// Fraction of L3 capacity held by co-runners, in `[0, 1]`.
    pub cache_frac: f64,
    /// Fraction of DRAM bandwidth consumed by co-runners, in `[0, 1]`.
    pub bw_frac: f64,
}

impl Interference {
    /// No co-runners: the isolated, solo-run condition.
    pub const NONE: Interference = Interference {
        cache_frac: 0.0,
        bw_frac: 0.0,
    };

    /// Canonical pressure point: both shared resources `level`-loaded.
    ///
    /// # Panics
    ///
    /// Panics if `level` is not within `[0, 1]` or is not finite.
    #[must_use]
    pub fn level(level: f64) -> Self {
        assert!(
            level.is_finite() && (0.0..=1.0).contains(&level),
            "interference level must be in [0,1], got {level}"
        );
        Self {
            cache_frac: level,
            bw_frac: level,
        }
    }

    /// Scalar summary used for reporting and version selection: the mean of
    /// the two resource pressures.
    #[must_use]
    pub fn scalar(&self) -> f64 {
        0.5 * (self.cache_frac + self.bw_frac)
    }

    /// Aggregates the pressure that a set of co-runners' demands exerts on
    /// one task, given the machine's shared-resource capacities.
    #[must_use]
    pub fn from_corunners<'a, I>(others: I, machine: &MachineConfig) -> Self
    where
        I: IntoIterator<Item = &'a PressureDemand>,
    {
        let mut cache = 0.0;
        let mut bw = 0.0;
        for d in others {
            cache += d.cache_bytes;
            bw += d.bw_bytes_per_s;
        }
        Self {
            cache_frac: (cache / machine.l3_bytes).clamp(0.0, 1.0),
            bw_frac: (bw / machine.dram_bw).clamp(0.0, 1.0),
        }
    }
}

/// The pressure a running kernel itself exerts on the shared resources.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct PressureDemand {
    /// L3 bytes the kernel tries to keep resident.
    pub cache_bytes: f64,
    /// DRAM bandwidth the kernel draws, bytes/second.
    pub bw_bytes_per_s: f64,
}

impl PressureDemand {
    /// Demand of an idle tenant.
    pub const ZERO: PressureDemand = PressureDemand {
        cache_bytes: 0.0,
        bw_bytes_per_s: 0.0,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_builds_symmetric_pressure() {
        let i = Interference::level(0.6);
        assert_eq!(i.cache_frac, 0.6);
        assert_eq!(i.bw_frac, 0.6);
        assert!((i.scalar() - 0.6).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn out_of_range_level_panics() {
        let _ = Interference::level(1.5);
    }

    #[test]
    fn corunner_aggregation_clamps_at_capacity() {
        let m = MachineConfig::threadripper_3990x();
        let d1 = PressureDemand {
            cache_bytes: 200.0e6,
            bw_bytes_per_s: 80.0e9,
        };
        let d2 = PressureDemand {
            cache_bytes: 200.0e6,
            bw_bytes_per_s: 80.0e9,
        };
        let i = Interference::from_corunners([&d1, &d2], &m);
        assert_eq!(i.cache_frac, 1.0);
        assert_eq!(i.bw_frac, 1.0);
    }

    #[test]
    fn no_corunners_is_no_interference() {
        let m = MachineConfig::threadripper_3990x();
        let i = Interference::from_corunners([], &m);
        assert_eq!(i, Interference::NONE);
    }

    #[test]
    fn partial_pressure_is_proportional() {
        let m = MachineConfig::threadripper_3990x();
        let d = PressureDemand {
            cache_bytes: 64.0e6,
            bw_bytes_per_s: 25.0e9,
        };
        let i = Interference::from_corunners([&d], &m);
        assert!((i.cache_frac - 0.25).abs() < 1e-12);
        assert!((i.bw_frac - 0.25).abs() < 1e-12);
    }
}
