//! Analytic multicore CPU machine model with shared-resource contention.
//!
//! The paper evaluates VELTAIR on an AMD Threadripper 3990X (64 cores,
//! 256 MB shared L3, 2.9 GHz, AVX2). This crate replaces that physical
//! testbed with a deterministic analytic model — a roofline extended with
//! shared-cache and shared-bandwidth contention — plus the simulated
//! hardware performance counters the interference proxy trains on, and a
//! small discrete-event toolkit used by the serving simulator.
//!
//! The phenomena the paper's design exploits all emerge from this model and
//! are locked in by tests:
//!
//! * co-located tasks steal L3 capacity and DRAM bandwidth from each other
//!   (Fig. 1b's up-to-1.8x slowdown);
//! * cache-resident ("high locality") kernels fall off a cliff once their
//!   footprint exceeds their effective share (Fig. 6a's 7x degradation);
//! * small kernels stop scaling with cores early (Fig. 4a);
//! * expanding a running kernel onto newly freed cores costs a thread-spawn
//!   penalty of O(100 us) (Fig. 5b).
//!
//! # Example
//!
//! ```
//! use veltair_sim::{execute, Interference, KernelProfile, MachineConfig};
//!
//! let machine = MachineConfig::threadripper_3990x();
//! let kernel = KernelProfile {
//!     flops: 231.0e6,
//!     compute_efficiency: 0.6,
//!     parallel_chunks: 128,
//!     footprint_base_bytes: 2.0e6,
//!     footprint_per_core_bytes: 0.5e6,
//!     min_traffic_bytes: 2.0e6,
//!     spill_traffic_bytes: 64.0e6,
//! };
//! let solo = execute(&kernel, 16, Interference::NONE, &machine);
//! let contended = execute(&kernel, 16, Interference::level(0.9), &machine);
//! assert!(contended.latency_s > solo.latency_s);
//! ```

pub mod contention;
pub mod counters;
pub mod des;
pub mod exec;
pub mod kernel;
pub mod machine;

pub use contention::{Interference, PressureDemand};
pub use counters::PerfCounters;
pub use des::{EventQueue, SimTime};
pub use exec::{execute, Execution, UnitProgress};
pub use kernel::KernelProfile;
pub use machine::MachineConfig;
