//! Machine configuration.

use serde::{Deserialize, Serialize};

/// Static description of the simulated CPU.
///
/// Defaults model the paper's testbed: an AMD Ryzen Threadripper 3990X with
/// 64 physical cores at 2.9 GHz (SMT and DVFS disabled, as in §5.1), AVX2
/// FMA units (32 FP32 FLOPs per cycle per core), a 256 MB shared L3, and
/// quad-channel DDR4-3200 (~100 GB/s).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Physical core count.
    pub cores: u32,
    /// Core clock in GHz.
    pub freq_ghz: f64,
    /// Peak FP32 FLOPs per cycle per core (AVX2: 2 FMA pipes x 8 lanes x 2).
    pub flops_per_cycle: f64,
    /// Shared last-level cache capacity in bytes.
    pub l3_bytes: f64,
    /// Aggregate DRAM bandwidth in bytes/second.
    pub dram_bw: f64,
    /// Maximum DRAM bandwidth a single core can draw, in bytes/second.
    pub per_core_bw: f64,
    /// L3 bandwidth available to each core, in bytes/second. The cross-tile
    /// reuse stream of a kernel is served at this rate, so fine-grained
    /// tilings with heavy refetch pay a latency cost even in isolation.
    pub l3_bw_per_core: f64,
    /// Fixed cost of dispatching a kernel to an already-warm thread pool
    /// (fork-join barrier), in seconds.
    pub dispatch_overhead_s: f64,
    /// Additional dispatch cost per participating thread, in seconds: the
    /// fork-join barrier is a tree/centralized combine whose latency grows
    /// with the team, so dispatching a layer to all 64 cores costs several
    /// times more than to a 8-core team. This is the per-layer overhead
    /// that stops small kernels from scaling with cores (Fig. 4a) and
    /// taxes whole-machine temporal multiplexing once per layer.
    pub sync_per_core_s: f64,
    /// Base cost of growing a running kernel's thread team, in seconds.
    pub spawn_base_s: f64,
    /// Additional team-growth cost per newly spawned thread, in seconds.
    pub spawn_per_core_s: f64,
    /// All-core frequency droop under DVFS: the effective clock scales by
    /// `1 - droop * (active - 1) / (cores - 1)`. The paper disables DVFS
    /// (§5.1); [`MachineConfig::with_dvfs`] re-enables it for sensitivity
    /// studies.
    pub dvfs_droop: f64,
}

impl MachineConfig {
    /// The paper's evaluation platform (Threadripper 3990X class).
    #[must_use]
    pub fn threadripper_3990x() -> Self {
        Self {
            cores: 64,
            freq_ghz: 2.9,
            flops_per_cycle: 32.0,
            l3_bytes: 256.0e6,
            dram_bw: 100.0e9,
            per_core_bw: 20.0e9,
            l3_bw_per_core: 40.0e9,
            dispatch_overhead_s: 5.0e-6,
            sync_per_core_s: 0.4e-6,
            spawn_base_s: 50.0e-6,
            spawn_per_core_s: 2.5e-6,
            dvfs_droop: 0.0,
        }
    }

    /// The same machine with simultaneous multi-threading enabled: twice
    /// the logical cores, each sustaining a little over half the per-core
    /// FP throughput (two hardware threads share the FMA pipes), with
    /// halved per-core bandwidth. The paper turns SMT off because of the
    /// latency fluctuation it induces (§5.1); this variant exists for
    /// sensitivity studies.
    #[must_use]
    pub fn with_smt(mut self) -> Self {
        self.cores *= 2;
        self.flops_per_cycle *= 0.55;
        self.per_core_bw *= 0.5;
        self.l3_bw_per_core *= 0.5;
        self
    }

    /// The same machine with an all-core DVFS frequency droop re-enabled.
    ///
    /// # Panics
    ///
    /// Panics unless `droop` is within `[0, 0.5]`.
    #[must_use]
    pub fn with_dvfs(mut self, droop: f64) -> Self {
        assert!((0.0..=0.5).contains(&droop), "droop must be in [0, 0.5]");
        self.dvfs_droop = droop;
        self
    }

    /// Effective per-core peak FLOPs/second with `active` cores busy
    /// (accounts for the DVFS droop when enabled).
    #[must_use]
    pub fn effective_flops_per_core(&self, active: u32) -> f64 {
        let scale = if self.cores > 1 {
            1.0 - self.dvfs_droop * f64::from(active.saturating_sub(1)) / f64::from(self.cores - 1)
        } else {
            1.0
        };
        self.peak_flops_per_core() * scale
    }

    /// A small 8-core desktop-class machine, handy for tests that need
    /// saturation to occur quickly.
    #[must_use]
    pub fn desktop_8core() -> Self {
        Self {
            cores: 8,
            freq_ghz: 3.6,
            flops_per_cycle: 32.0,
            l3_bytes: 32.0e6,
            dram_bw: 40.0e9,
            per_core_bw: 20.0e9,
            l3_bw_per_core: 35.0e9,
            dispatch_overhead_s: 3.0e-6,
            sync_per_core_s: 0.3e-6,
            spawn_base_s: 30.0e-6,
            spawn_per_core_s: 2.0e-6,
            dvfs_droop: 0.0,
        }
    }

    /// Peak FLOPs/second of one core.
    #[must_use]
    pub fn peak_flops_per_core(&self) -> f64 {
        self.freq_ghz * 1e9 * self.flops_per_cycle
    }

    /// Peak FLOPs/second of the whole machine.
    #[must_use]
    pub fn peak_flops(&self) -> f64 {
        self.peak_flops_per_core() * f64::from(self.cores)
    }

    /// Cost of dispatching one kernel (unit) to a warm team of `cores`
    /// threads: the fixed fork-join barrier plus the team-size-dependent
    /// synchronization term.
    #[must_use]
    pub fn unit_dispatch_overhead_s(&self, cores: u32) -> f64 {
        self.dispatch_overhead_s + self.sync_per_core_s * f64::from(cores)
    }

    /// Cost of expanding a running kernel's thread team by `added` threads.
    ///
    /// This is the "scheduling conflict" overhead of §3.2: a layer that
    /// starts with fewer cores than requested must spawn additional threads
    /// when cores free up (paper Fig. 5b measures a 220 us mean, 100 us
    /// median for ResNet-50 layers).
    #[must_use]
    pub fn expansion_overhead_s(&self, added: u32) -> f64 {
        if added == 0 {
            0.0
        } else {
            self.spawn_base_s + self.spawn_per_core_s * f64::from(added)
        }
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::threadripper_3990x()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_flops_are_consistent() {
        let m = MachineConfig::threadripper_3990x();
        assert!((m.peak_flops_per_core() - 92.8e9).abs() < 1e6);
        assert!((m.peak_flops() - 64.0 * 92.8e9).abs() < 1e8);
    }

    #[test]
    fn expansion_overhead_matches_paper_scale() {
        let m = MachineConfig::threadripper_3990x();
        // Growing by a full 64-core team costs ~210 us (paper mean: 220 us).
        let full = m.expansion_overhead_s(64);
        assert!(full > 150.0e-6 && full < 300.0e-6, "got {full}");
        // Growing by ~20 cores costs ~100 us (paper median: 100 us).
        let median = m.expansion_overhead_s(20);
        assert!(median > 60.0e-6 && median < 150.0e-6, "got {median}");
        assert_eq!(m.expansion_overhead_s(0), 0.0);
    }

    #[test]
    fn default_is_the_paper_testbed() {
        assert_eq!(
            MachineConfig::default(),
            MachineConfig::threadripper_3990x()
        );
    }

    #[test]
    fn unit_dispatch_grows_with_team_size() {
        let m = MachineConfig::threadripper_3990x();
        let small = m.unit_dispatch_overhead_s(8);
        let full = m.unit_dispatch_overhead_s(64);
        assert!(full > small, "64-core barrier must cost more than 8-core");
        // The whole-machine barrier is a multiple of the base dispatch
        // cost, large enough to stop tiny layers from scaling (Fig. 4a)
        // but well under the team-rebuild (expansion) overhead.
        assert!(full >= 4.0 * m.dispatch_overhead_s, "got {full}");
        assert!(full < m.expansion_overhead_s(64));
    }
}
