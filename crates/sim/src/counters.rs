//! Simulated hardware performance counters.

use serde::{Deserialize, Serialize};

/// Counter totals produced by one kernel execution, mirroring the PMU events
/// the paper samples for its interference proxy (§4.3): L3 accesses, L3
/// misses, retired instructions, core cycles, and FP operations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct PerfCounters {
    /// References reaching the shared L3.
    pub l3_accesses: f64,
    /// L3 misses (lines fetched from DRAM).
    pub l3_misses: f64,
    /// Retired instructions (SIMD compute + memory ops).
    pub instructions: f64,
    /// Aggregate busy core cycles.
    pub cycles: f64,
    /// Floating point operations retired.
    pub flops: f64,
}

impl PerfCounters {
    /// L3 miss rate in `[0, 1]`; zero when there were no accesses.
    #[must_use]
    pub fn l3_miss_rate(&self) -> f64 {
        if self.l3_accesses > 0.0 {
            (self.l3_misses / self.l3_accesses).clamp(0.0, 1.0)
        } else {
            0.0
        }
    }

    /// Instructions per cycle; zero when no cycles elapsed.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles > 0.0 {
            self.instructions / self.cycles
        } else {
            0.0
        }
    }

    /// Element-wise accumulation (summing a window of executions).
    pub fn accumulate(&mut self, other: &PerfCounters) {
        self.l3_accesses += other.l3_accesses;
        self.l3_misses += other.l3_misses;
        self.instructions += other.instructions;
        self.cycles += other.cycles;
        self.flops += other.flops;
    }

    /// The counter vector in the fixed feature order used by the proxy:
    /// `[miss_rate, accesses, ipc, flops]`.
    #[must_use]
    pub fn feature_vector(&self) -> [f64; 4] {
        [
            self.l3_miss_rate(),
            self.l3_accesses,
            self.ipc(),
            self.flops,
        ]
    }

    /// Names matching [`Self::feature_vector`] order.
    #[must_use]
    pub fn feature_names() -> [&'static str; 4] {
        ["L3 Miss Rate", "L3 Access", "IPC", "FP OP"]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates() {
        let c = PerfCounters {
            l3_accesses: 100.0,
            l3_misses: 25.0,
            instructions: 1000.0,
            cycles: 500.0,
            flops: 2000.0,
        };
        assert!((c.l3_miss_rate() - 0.25).abs() < 1e-12);
        assert!((c.ipc() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_counters_have_zero_rates() {
        let c = PerfCounters::default();
        assert_eq!(c.l3_miss_rate(), 0.0);
        assert_eq!(c.ipc(), 0.0);
    }

    #[test]
    fn accumulate_sums_fields() {
        let mut a = PerfCounters {
            l3_accesses: 1.0,
            l3_misses: 1.0,
            instructions: 1.0,
            cycles: 1.0,
            flops: 1.0,
        };
        let b = a;
        a.accumulate(&b);
        assert_eq!(a.l3_accesses, 2.0);
        assert_eq!(a.flops, 2.0);
    }

    #[test]
    fn feature_vector_matches_names() {
        assert_eq!(
            PerfCounters::feature_names().len(),
            PerfCounters::default().feature_vector().len()
        );
    }
}
