//! Minimal discrete-event simulation toolkit.
//!
//! The serving simulator in `veltair-sched` is a *progress-based* DES: when
//! the set of co-running tenants changes, every in-flight unit's completion
//! rate changes too. This module provides the deterministic clock and the
//! stable event queue; the re-rating logic lives with the scheduler.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

/// Simulation timestamp in seconds.
///
/// A newtype so that times, durations, and rates cannot be accidentally
/// mixed; ordering treats `NaN` as a programming error (it panics).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct SimTime(pub f64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Adds a duration in seconds.
    ///
    /// # Panics
    ///
    /// Panics if the duration is negative or not finite.
    #[must_use]
    pub fn after(self, seconds: f64) -> SimTime {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "durations must be finite and non-negative, got {seconds}"
        );
        SimTime(self.0 + seconds)
    }

    /// Seconds elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self` (time ran backwards).
    #[must_use]
    pub fn since(self, earlier: SimTime) -> f64 {
        let d = self.0 - earlier.0;
        assert!(
            d >= -1e-12,
            "time ran backwards: {} -> {}",
            earlier.0,
            self.0
        );
        d.max(0.0)
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("SimTime must never be NaN")
    }
}

/// An event queue delivering `(SimTime, E)` pairs in time order, breaking
/// ties by insertion order (FIFO), which keeps simulations deterministic.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first delivery.
        other.time.cmp(&self.time).then(other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        self.heap.push(Entry {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Time of the earliest pending event.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(3.0), "c");
        q.push(SimTime(1.0), "a");
        q.push(SimTime(2.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.push(SimTime(1.0), 1);
        q.push(SimTime(1.0), 2);
        q.push(SimTime(1.0), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, [1, 2, 3]);
    }

    #[test]
    fn sim_time_arithmetic() {
        let t = SimTime::ZERO.after(1.5);
        assert!((t.since(SimTime::ZERO) - 1.5).abs() < 1e-12);
        assert!(t > SimTime(1.0));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_panics() {
        let _ = SimTime::ZERO.after(-1.0);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime(5.0), ());
        assert_eq!(q.peek_time(), Some(SimTime(5.0)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
