//! The kernel execution model: a contention-aware roofline.

use serde::{Deserialize, Serialize};

use crate::contention::{Interference, PressureDemand};
use crate::counters::PerfCounters;
use crate::kernel::KernelProfile;
use crate::machine::MachineConfig;

/// Fraction of the shorter roofline term that is *not* hidden behind the
/// longer one (imperfect compute/memory overlap).
const OVERLAP_RESIDUAL: f64 = 0.25;

/// Bandwidth floor: co-runners can never starve a kernel entirely. The
/// memory controller's fair queueing guarantees roughly a 1/8 share even
/// under the heaviest co-location the paper studies.
const BW_FLOOR_FRAC: f64 = 0.125;

/// Cache floor: a running kernel's actively streamed lines cannot be fully
/// evicted by co-runners (recency wins under LRU-like replacement, and the
/// private L2s are untouchable). ~1.3 MB on the 3990X.
const CACHE_FLOOR_FRAC: f64 = 0.005;

/// Convexity of capacity loss under contention. Co-runners owning a
/// fraction `f` of L3 insertions cost more than `f` of *useful* capacity:
/// the victim's reuse distances lengthen, so its effective share decays as
/// `(1 - f)^3`. Calibrated so the paper's version crossovers (Fig. 6b)
/// spread across the 0-100 % pressure axis.
const CACHE_CONTENTION_EXP: i32 = 3;

/// Cache line size in bytes, for counter synthesis.
const LINE_BYTES: f64 = 64.0;

/// Result of simulating one kernel execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Execution {
    /// Wall-clock latency in seconds (kernel only; scheduler dispatch and
    /// team-expansion overheads are charged separately).
    pub latency_s: f64,
    /// Simulated performance counters.
    pub counters: PerfCounters,
    /// Pressure this execution exerts on co-runners while it runs.
    pub demand: PressureDemand,
}

/// Progress of one in-flight scheduling unit in a progress-based DES.
///
/// A unit first pays any pending scheduler overhead (dispatch, thread-team
/// expansion), then works through the kernel at a rate set by the current
/// [`Execution::latency_s`] — which co-location changes re-rate, so
/// progress is tracked as a *fraction* of work remaining rather than a
/// completion timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UnitProgress {
    /// Fraction of the unit's kernel work still outstanding, in `[0, 1]`.
    pub remaining_frac: f64,
    /// Scheduler overhead seconds still to pay before kernel work resumes.
    pub overhead_s: f64,
}

/// Completion tolerances: progress below these residuals counts as done
/// (floating-point advancement never lands exactly on zero).
const OVERHEAD_DONE_S: f64 = 1e-12;
const FRAC_DONE: f64 = 1e-9;

impl UnitProgress {
    /// A freshly dispatched unit: full work remaining plus the given
    /// scheduler overhead.
    #[must_use]
    pub fn fresh(overhead_s: f64) -> Self {
        Self {
            remaining_frac: 1.0,
            overhead_s,
        }
    }

    /// Advances by `dt` seconds under the current rating `latency_s`:
    /// overhead drains first, then the remaining fraction.
    pub fn advance(&mut self, dt: f64, latency_s: f64) {
        let mut left = dt;
        if self.overhead_s > 0.0 {
            let used = self.overhead_s.min(left);
            self.overhead_s -= used;
            left -= used;
        }
        if left > 0.0 && latency_s > 0.0 {
            self.remaining_frac = (self.remaining_frac - left / latency_s).max(0.0);
        }
    }

    /// Charges additional scheduler overhead (e.g. a thread-team growth).
    pub fn add_overhead(&mut self, seconds: f64) {
        self.overhead_s += seconds;
    }

    /// Restarts the work fraction for the next unit of a block, charging
    /// its dispatch overhead on top of any unpaid remainder.
    pub fn restart(&mut self, dispatch_overhead_s: f64) {
        self.remaining_frac = 1.0;
        self.overhead_s += dispatch_overhead_s;
    }

    /// Whether the unit has paid its overhead and finished its work.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.overhead_s <= OVERHEAD_DONE_S && self.remaining_frac <= FRAC_DONE
    }

    /// Seconds until completion under the current rating, assuming the
    /// co-location does not change again.
    #[must_use]
    pub fn eta_s(&self, latency_s: f64) -> f64 {
        self.overhead_s + self.remaining_frac * latency_s
    }
}

/// Simulates executing `kernel` on `cores` cores under `interference`.
///
/// The model is a roofline with contention: compute time is
/// `flops / (effective_cores x peak x efficiency)` including a wave-
/// quantization imbalance factor; memory time is cache-share-dependent DRAM
/// traffic divided by the bandwidth left over by co-runners. The two terms
/// overlap imperfectly (`OVERLAP_RESIDUAL`).
///
/// # Panics
///
/// Panics if `cores == 0` or the profile fails [`KernelProfile::validate`];
/// both indicate scheduler or compiler bugs rather than recoverable inputs.
#[must_use]
pub fn execute(
    kernel: &KernelProfile,
    cores: u32,
    interference: Interference,
    machine: &MachineConfig,
) -> Execution {
    assert!(cores > 0, "cannot execute a kernel on zero cores");
    if let Err(e) = kernel.validate() {
        panic!("invalid kernel profile: {e}");
    }

    // --- Compute term ---------------------------------------------------
    let p_eff = cores.min(kernel.parallel_chunks);
    let chunks = f64::from(kernel.parallel_chunks);
    // Wave quantization: 65 chunks on 64 cores take two full waves.
    let waves = (chunks / f64::from(p_eff)).ceil();
    let ideal_waves = chunks / f64::from(p_eff);
    let imbalance = waves / ideal_waves;
    let t_comp = kernel.flops
        / (f64::from(p_eff) * machine.effective_flops_per_core(p_eff) * kernel.compute_efficiency)
        * imbalance;

    // --- Memory terms -----------------------------------------------------
    let avail_cache = (machine.l3_bytes
        * (1.0 - interference.cache_frac).powi(CACHE_CONTENTION_EXP))
    .max(machine.l3_bytes * CACHE_FLOOR_FRAC);
    let traffic = kernel.traffic_bytes(cores, avail_cache);
    let avail_bw =
        (machine.dram_bw * (1.0 - interference.bw_frac)).max(machine.dram_bw * BW_FLOOR_FRAC);
    let bw = avail_bw.min(f64::from(cores) * machine.per_core_bw);
    let t_dram = traffic / bw;
    // The cross-tile reuse stream (all L3-reaching references) is served at
    // L3 bandwidth regardless of residency; fine tilings refetch more.
    let t_l3 = kernel.spill_traffic_bytes / (f64::from(p_eff) * machine.l3_bw_per_core);

    // --- Combine ----------------------------------------------------------
    let serial = t_comp.max(t_dram).max(t_l3);
    let latency_s = serial + OVERLAP_RESIDUAL * (t_comp + t_dram + t_l3 - serial);

    // --- Counters ---------------------------------------------------------
    // All L3-reaching references are a schedule property (the reuse stream);
    // how many of them miss depends on the cache share actually obtained.
    let l3_accesses = (kernel.spill_traffic_bytes / LINE_BYTES).max(1.0);
    let l3_misses = (traffic / LINE_BYTES).min(l3_accesses);
    // SIMD compute instructions plus one instruction per line touched.
    let instructions = kernel.flops / (machine.flops_per_cycle / 2.0) + l3_accesses;
    let cycles = latency_s * machine.freq_ghz * 1e9 * f64::from(p_eff);
    let counters = PerfCounters {
        l3_accesses,
        l3_misses,
        instructions,
        cycles,
        flops: kernel.flops,
    };

    // --- Demand on co-runners ----------------------------------------------
    // Cache pressure = held working set + LRU pollution by the DRAM
    // insertion stream over one cache-fill window (l3 / dram_bw seconds).
    let bw_bytes_per_s = traffic / latency_s.max(1e-12);
    let pollution = bw_bytes_per_s * (machine.l3_bytes / machine.dram_bw);
    let demand = PressureDemand {
        cache_bytes: (kernel.footprint_bytes(cores) + pollution).min(machine.l3_bytes),
        bw_bytes_per_s,
    };

    Execution {
        latency_s,
        counters,
        demand,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> MachineConfig {
        MachineConfig::threadripper_3990x()
    }

    /// A parallelism-oriented kernel: tiny tiles, tiny footprint, higher
    /// compulsory traffic, slightly lower inner-loop efficiency.
    fn parallel_kernel() -> KernelProfile {
        KernelProfile {
            flops: 231.0e6,
            compute_efficiency: 0.6,
            parallel_chunks: 448,
            footprint_base_bytes: 0.3e6,
            footprint_per_core_bytes: 25.0e3,
            min_traffic_bytes: 4.4e6,
            spill_traffic_bytes: 95.0e6,
        }
    }

    /// A locality-oriented kernel: large tiles, large footprint, minimal
    /// compulsory traffic, best inner-loop efficiency.
    fn locality_kernel() -> KernelProfile {
        KernelProfile {
            flops: 231.0e6,
            compute_efficiency: 0.85,
            parallel_chunks: 56,
            footprint_base_bytes: 2.4e6,
            footprint_per_core_bytes: 2.5e6,
            min_traffic_bytes: 4.4e6,
            spill_traffic_bytes: 40.0e6,
        }
    }

    #[test]
    fn more_cores_never_slower() {
        let k = parallel_kernel();
        let mut last = f64::INFINITY;
        for p in [1u32, 2, 4, 8, 16, 32, 64] {
            let e = execute(&k, p, Interference::NONE, &machine());
            assert!(e.latency_s <= last * 1.0001, "latency grew at p={p}");
            last = e.latency_s;
        }
    }

    #[test]
    fn scaling_saturates_at_parallel_chunks() {
        let k = KernelProfile {
            parallel_chunks: 8,
            ..parallel_kernel()
        };
        let e8 = execute(&k, 8, Interference::NONE, &machine());
        let e64 = execute(&k, 64, Interference::NONE, &machine());
        assert!((e8.latency_s - e64.latency_s).abs() / e8.latency_s < 1e-9);
    }

    #[test]
    fn wave_quantization_penalizes_poor_divisibility() {
        // 65 chunks on 64 cores takes ~2x the time of 64 chunks.
        let k64 = KernelProfile {
            parallel_chunks: 64,
            ..parallel_kernel()
        };
        let k65 = KernelProfile {
            parallel_chunks: 65,
            ..parallel_kernel()
        };
        let e64 = execute(&k64, 64, Interference::NONE, &machine());
        let e65 = execute(&k65, 64, Interference::NONE, &machine());
        // The compute term doubles; memory terms dilute the overall ratio.
        assert!(e65.latency_s > 1.5 * e64.latency_s);
    }

    #[test]
    fn interference_never_speeds_up() {
        for k in [parallel_kernel(), locality_kernel()] {
            let mut last = 0.0;
            for lvl in [0.0, 0.25, 0.5, 0.75, 1.0] {
                let e = execute(&k, 16, Interference::level(lvl), &machine());
                assert!(e.latency_s >= last - 1e-15, "latency fell at level {lvl}");
                last = e.latency_s;
            }
        }
    }

    #[test]
    fn fig6_shape_locality_wins_solo_parallelism_wins_contended() {
        // The paper's central compilation insight (Fig. 6): the
        // locality-optimal version is fastest in isolation but degrades
        // ~7x under heavy interference, where the parallel version wins.
        let m = machine();
        let loc_solo = execute(&locality_kernel(), 16, Interference::NONE, &m).latency_s;
        let par_solo = execute(&parallel_kernel(), 16, Interference::NONE, &m).latency_s;
        let loc_high = execute(&locality_kernel(), 16, Interference::level(0.95), &m).latency_s;
        let par_high = execute(&parallel_kernel(), 16, Interference::level(0.95), &m).latency_s;
        assert!(loc_solo < par_solo, "locality version must win solo");
        assert!(
            par_high < loc_high,
            "parallel version must win under contention"
        );
        let degradation = loc_high / loc_solo;
        assert!(
            degradation > 3.0,
            "locality version degraded only {degradation:.2}x"
        );
        assert!(
            par_high / par_solo < 3.0,
            "parallel version should be robust"
        );
    }

    #[test]
    fn counters_reflect_contention() {
        let m = machine();
        let solo = execute(&locality_kernel(), 16, Interference::NONE, &m);
        let high = execute(&locality_kernel(), 16, Interference::level(0.9), &m);
        assert!(high.counters.l3_miss_rate() > solo.counters.l3_miss_rate());
        assert!(high.counters.ipc() < solo.counters.ipc());
        assert_eq!(solo.counters.flops, high.counters.flops);
    }

    #[test]
    fn demand_is_bounded_by_machine() {
        let m = machine();
        let e = execute(&locality_kernel(), 64, Interference::NONE, &m);
        assert!(e.demand.cache_bytes <= m.l3_bytes);
        assert!(e.demand.bw_bytes_per_s <= m.dram_bw * 1.01);
    }

    #[test]
    #[should_panic(expected = "zero cores")]
    fn zero_cores_panics() {
        let _ = execute(&parallel_kernel(), 0, Interference::NONE, &machine());
    }

    #[test]
    fn progress_pays_overhead_before_work() {
        let mut p = UnitProgress::fresh(1.0);
        p.advance(0.5, 10.0);
        assert!((p.overhead_s - 0.5).abs() < 1e-12);
        assert!(
            (p.remaining_frac - 1.0).abs() < 1e-12,
            "no work while overhead is unpaid"
        );
        p.advance(1.5, 10.0);
        assert!(p.overhead_s <= 1e-12);
        assert!((p.remaining_frac - 0.9).abs() < 1e-9);
    }

    #[test]
    fn progress_completes_exactly_at_eta() {
        let mut p = UnitProgress::fresh(0.25);
        let eta = p.eta_s(2.0);
        assert!((eta - 2.25).abs() < 1e-12);
        p.advance(eta, 2.0);
        assert!(p.is_done());
    }

    #[test]
    fn progress_restart_charges_dispatch_overhead() {
        let mut p = UnitProgress::fresh(0.0);
        p.advance(1.0, 1.0);
        assert!(p.is_done());
        p.restart(0.01);
        assert!(!p.is_done());
        assert!((p.remaining_frac - 1.0).abs() < 1e-12);
        assert!((p.overhead_s - 0.01).abs() < 1e-12);
    }
}
