//! Machine-model variants: the SMT and DVFS sensitivity toggles that the
//! paper's testbed disables (§5.1).

use veltair_sim::{execute, Interference, KernelProfile, MachineConfig};

fn kernel() -> KernelProfile {
    KernelProfile {
        flops: 1.0e9,
        compute_efficiency: 0.7,
        parallel_chunks: 4096,
        footprint_base_bytes: 1.0e6,
        footprint_per_core_bytes: 100.0e3,
        min_traffic_bytes: 5.0e6,
        spill_traffic_bytes: 50.0e6,
    }
}

#[test]
fn smt_doubles_logical_cores_but_not_throughput() {
    let base = MachineConfig::threadripper_3990x();
    let smt = base.clone().with_smt();
    assert_eq!(smt.cores, 2 * base.cores);
    // Aggregate peak grows only ~10 %, not 2x.
    let ratio = smt.peak_flops() / base.peak_flops();
    assert!(ratio > 1.0 && ratio < 1.3, "smt peak ratio {ratio}");
}

#[test]
fn smt_helps_highly_parallel_kernels_at_full_machine() {
    let base = MachineConfig::threadripper_3990x();
    let smt = base.clone().with_smt();
    let l_base = execute(&kernel(), base.cores, Interference::NONE, &base).latency_s;
    let l_smt = execute(&kernel(), smt.cores, Interference::NONE, &smt).latency_s;
    // With abundant chunks, SMT's extra logical parallelism wins a little.
    assert!(l_smt < l_base, "smt {l_smt} vs base {l_base}");
    assert!(l_smt > 0.6 * l_base, "smt gain implausibly large");
}

#[test]
fn dvfs_droop_slows_wide_allocations_only() {
    let base = MachineConfig::threadripper_3990x();
    let dvfs = base.clone().with_dvfs(0.2);
    let one_base = execute(&kernel(), 1, Interference::NONE, &base).latency_s;
    let one_dvfs = execute(&kernel(), 1, Interference::NONE, &dvfs).latency_s;
    assert!(
        (one_base - one_dvfs).abs() < 1e-12,
        "single core must be unaffected"
    );
    let full_base = execute(&kernel(), 64, Interference::NONE, &base).latency_s;
    let full_dvfs = execute(&kernel(), 64, Interference::NONE, &dvfs).latency_s;
    assert!(full_dvfs > full_base, "droop must slow the full machine");
    assert!(full_dvfs < 1.5 * full_base, "20% droop cannot cost 50%");
}

#[test]
fn effective_frequency_interpolates_linearly() {
    let m = MachineConfig::threadripper_3990x().with_dvfs(0.3);
    let f1 = m.effective_flops_per_core(1);
    let f64c = m.effective_flops_per_core(64);
    assert!((f1 - m.peak_flops_per_core()).abs() < 1e-6);
    assert!((f64c - 0.7 * m.peak_flops_per_core()).abs() < 1e-3 * f1);
    let mid = m.effective_flops_per_core(32);
    assert!(mid < f1 && mid > f64c);
}

#[test]
#[should_panic(expected = "droop must be in")]
fn absurd_droop_rejected() {
    let _ = MachineConfig::threadripper_3990x().with_dvfs(0.9);
}
