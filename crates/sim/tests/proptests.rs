//! Property-based invariants of the machine model and DES toolkit.

use proptest::prelude::*;
use veltair_sim::{execute, EventQueue, Interference, KernelProfile, MachineConfig, SimTime};

fn arb_profile() -> impl Strategy<Value = KernelProfile> {
    (
        1.0e6f64..1.0e10,
        0.05f64..0.95,
        1u32..2048,
        0.0f64..4.0e6,
        1.0e3f64..2.0e6,
        1.0e4f64..1.0e8,
        0.0f64..1.0e9,
    )
        .prop_map(|(flops, eff, chunks, base, per_core, min_t, extra)| KernelProfile {
            flops,
            compute_efficiency: eff,
            parallel_chunks: chunks,
            footprint_base_bytes: base,
            footprint_per_core_bytes: per_core,
            min_traffic_bytes: min_t,
            spill_traffic_bytes: min_t + extra,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn execution_outputs_are_finite_and_positive(
        p in arb_profile(),
        cores in 1u32..=64,
        level in 0.0f64..=1.0,
    ) {
        let machine = MachineConfig::threadripper_3990x();
        let e = execute(&p, cores, Interference::level(level), &machine);
        prop_assert!(e.latency_s.is_finite() && e.latency_s > 0.0);
        prop_assert!(e.counters.l3_accesses >= e.counters.l3_misses);
        prop_assert!((0.0..=1.0).contains(&e.counters.l3_miss_rate()));
        prop_assert!(e.demand.cache_bytes <= machine.l3_bytes);
        prop_assert!(e.demand.bw_bytes_per_s >= 0.0);
    }

    #[test]
    fn solo_latency_non_increasing_in_cores(p in arb_profile(), cores in 1u32..=63) {
        let machine = MachineConfig::threadripper_3990x();
        let a = execute(&p, cores, Interference::NONE, &machine).latency_s;
        let b = execute(&p, cores + 1, Interference::NONE, &machine).latency_s;
        // Solo, the footprint always fits the 256 MB L3 with the bounded
        // generators above, so more cores can only help (or tie).
        prop_assert!(b <= a * (1.0 + 1e-9), "p={cores}: {a} -> {b}");
    }

    #[test]
    fn latency_non_decreasing_in_interference(
        p in arb_profile(),
        cores in 1u32..=64,
        a in 0.0f64..=1.0,
        b in 0.0f64..=1.0,
    ) {
        let machine = MachineConfig::threadripper_3990x();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let l_lo = execute(&p, cores, Interference::level(lo), &machine).latency_s;
        let l_hi = execute(&p, cores, Interference::level(hi), &machine).latency_s;
        prop_assert!(l_hi >= l_lo - 1e-15);
    }

    #[test]
    fn event_queue_delivers_sorted(times in prop::collection::vec(0.0f64..1e6, 1..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.push(SimTime(*t), i);
        }
        let mut last = SimTime(-1.0);
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    #[test]
    fn corunner_pressure_is_clamped(
        caches in prop::collection::vec(0.0f64..1.0e9, 0..10),
        bws in prop::collection::vec(0.0f64..1.0e11, 0..10),
    ) {
        let machine = MachineConfig::threadripper_3990x();
        let n = caches.len().min(bws.len());
        let demands: Vec<veltair_sim::PressureDemand> = (0..n)
            .map(|i| veltair_sim::PressureDemand {
                cache_bytes: caches[i],
                bw_bytes_per_s: bws[i],
            })
            .collect();
        let i = Interference::from_corunners(demands.iter(), &machine);
        prop_assert!((0.0..=1.0).contains(&i.cache_frac));
        prop_assert!((0.0..=1.0).contains(&i.bw_frac));
        prop_assert!((0.0..=1.0).contains(&i.scalar()));
    }
}
