//! Randomized invariants of the machine model and DES toolkit.
//!
//! Formerly proptest-based; the hermetic build has no crates.io access,
//! so these run the same properties over seeded random cases.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use veltair_sim::{execute, EventQueue, Interference, KernelProfile, MachineConfig, SimTime};

const CASES: usize = 128;

fn arb_profile(rng: &mut StdRng) -> KernelProfile {
    let min_t = rng.gen_range(1.0e4f64..1.0e8);
    KernelProfile {
        flops: rng.gen_range(1.0e6f64..1.0e10),
        compute_efficiency: rng.gen_range(0.05f64..0.95),
        parallel_chunks: rng.gen_range(1u32..2048),
        footprint_base_bytes: rng.gen_range(0.0f64..4.0e6),
        footprint_per_core_bytes: rng.gen_range(1.0e3f64..2.0e6),
        min_traffic_bytes: min_t,
        spill_traffic_bytes: min_t + rng.gen_range(0.0f64..1.0e9),
    }
}

#[test]
fn execution_outputs_are_finite_and_positive() {
    let mut rng = StdRng::seed_from_u64(0x51b01);
    let machine = MachineConfig::threadripper_3990x();
    for _ in 0..CASES {
        let p = arb_profile(&mut rng);
        let cores = rng.gen_range(1u32..=64);
        let level = rng.gen_range(0.0f64..1.0);
        let e = execute(&p, cores, Interference::level(level), &machine);
        assert!(e.latency_s.is_finite() && e.latency_s > 0.0);
        assert!(e.counters.l3_accesses >= e.counters.l3_misses);
        assert!((0.0..=1.0).contains(&e.counters.l3_miss_rate()));
        assert!(e.demand.cache_bytes <= machine.l3_bytes);
        assert!(e.demand.bw_bytes_per_s >= 0.0);
    }
}

#[test]
fn solo_latency_non_increasing_in_cores() {
    let mut rng = StdRng::seed_from_u64(0x51b02);
    let machine = MachineConfig::threadripper_3990x();
    for _ in 0..CASES {
        let p = arb_profile(&mut rng);
        let cores = rng.gen_range(1u32..=63);
        let a = execute(&p, cores, Interference::NONE, &machine).latency_s;
        let b = execute(&p, cores + 1, Interference::NONE, &machine).latency_s;
        // Solo, the footprint always fits the 256 MB L3 with the bounded
        // generators above, so more cores can only help (or tie).
        assert!(b <= a * (1.0 + 1e-9), "p={cores}: {a} -> {b}");
    }
}

#[test]
fn latency_non_decreasing_in_interference() {
    let mut rng = StdRng::seed_from_u64(0x51b03);
    let machine = MachineConfig::threadripper_3990x();
    for _ in 0..CASES {
        let p = arb_profile(&mut rng);
        let cores = rng.gen_range(1u32..=64);
        let a = rng.gen_range(0.0f64..1.0);
        let b = rng.gen_range(0.0f64..1.0);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let l_lo = execute(&p, cores, Interference::level(lo), &machine).latency_s;
        let l_hi = execute(&p, cores, Interference::level(hi), &machine).latency_s;
        assert!(l_hi >= l_lo - 1e-15);
    }
}

#[test]
fn event_queue_delivers_sorted() {
    let mut rng = StdRng::seed_from_u64(0x51b04);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..200);
        let times: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0f64..1e6)).collect();
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.push(SimTime(*t), i);
        }
        let mut last = SimTime(-1.0);
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
            count += 1;
        }
        assert_eq!(count, times.len());
    }
}

#[test]
fn corunner_pressure_is_clamped() {
    let mut rng = StdRng::seed_from_u64(0x51b05);
    let machine = MachineConfig::threadripper_3990x();
    for _ in 0..CASES {
        let n = rng.gen_range(0usize..10);
        let demands: Vec<veltair_sim::PressureDemand> = (0..n)
            .map(|_| veltair_sim::PressureDemand {
                cache_bytes: rng.gen_range(0.0f64..1.0e9),
                bw_bytes_per_s: rng.gen_range(0.0f64..1.0e11),
            })
            .collect();
        let i = Interference::from_corunners(demands.iter(), &machine);
        assert!((0.0..=1.0).contains(&i.cache_frac));
        assert!((0.0..=1.0).contains(&i.bw_frac));
        assert!((0.0..=1.0).contains(&i.scalar()));
    }
}
