//! The paper's evaluation metrics (§5.1), chiefly "QPS with 95 % of tasks
//! QoS-satisfied" via bisection over the arrival rate.

use serde::{Deserialize, Serialize};
use veltair_sched::{ServingReport, WorkloadSpec};

use crate::engine::ServingEngine;

/// Max-QPS search configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QpsSearchConfig {
    /// Required QoS satisfaction (paper: 0.95).
    pub satisfaction_target: f64,
    /// Queries simulated per probe run.
    pub queries: usize,
    /// Workload generation seed.
    pub seed: u64,
    /// Bisection iterations after bracketing.
    pub iterations: usize,
}

impl QpsSearchConfig {
    /// Default search: 95 % target, query budget from the
    /// `VELTAIR_QUERIES` environment variable (default 400).
    #[must_use]
    pub fn standard() -> Self {
        let queries = std::env::var("VELTAIR_QUERIES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(400);
        Self {
            satisfaction_target: 0.95,
            queries,
            seed: 0xA11CE,
            iterations: 7,
        }
    }

    /// The Fig. 12 sweep's target. The paper uses 95 %; on this substrate
    /// the *static-minimum* baselines structurally miss 95 % on the heavy
    /// models at any rate (a single co-runner costs SSD/BERT more than
    /// their planning slack), which would degenerate their capacity to the
    /// search floor and inflate every normalized improvement. 90 % keeps
    /// all policies on finite, comparable capacities; the deviation is
    /// recorded in EXPERIMENTS.md.
    #[must_use]
    pub fn figure12() -> Self {
        Self {
            satisfaction_target: 0.90,
            ..Self::standard()
        }
    }
}

/// Result of a max-QPS search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QpsResult {
    /// Highest aggregate QPS sustaining the satisfaction target.
    pub qps: f64,
    /// Overall satisfaction measured at that rate.
    pub satisfaction: f64,
    /// Mean query latency (seconds) at that rate.
    pub avg_latency_s: f64,
    /// The full report at the sustained rate.
    pub report: ServingReport,
}

/// Finds the maximum aggregate QPS at which the engine sustains the
/// satisfaction target for the given workload shape (stream proportions
/// are preserved; only the aggregate rate is scaled).
///
/// When the target is unreachable even at a vanishing rate (a policy can
/// structurally miss QoS — e.g. a static minimum allocation on a heavy
/// model loses more to one co-runner than its planning slack), the floor
/// rate is returned with its measured satisfaction, so callers can
/// distinguish "capacity = floor" from a sustained target via
/// [`QpsResult::satisfaction`].
#[must_use]
pub fn max_qps_at_qos(
    engine: &ServingEngine,
    workload: &WorkloadSpec,
    cfg: &QpsSearchConfig,
) -> QpsResult {
    let probe = |qps: f64| -> ServingReport {
        let mut w = workload.scaled_to(qps);
        w.total_queries = cfg.queries;
        engine.run(&w, cfg.seed)
    };
    let ok = |r: &ServingReport| r.overall_satisfaction() >= cfg.satisfaction_target;

    // Bracket: grow until unsatisfied.
    let mut lo = 0.5;
    let mut lo_report = probe(lo);
    if !ok(&lo_report) {
        return QpsResult {
            qps: lo,
            satisfaction: lo_report.overall_satisfaction(),
            avg_latency_s: lo_report.overall_avg_latency_s(),
            report: lo_report,
        };
    }
    let mut hi = 4.0;
    let mut hi_report = probe(hi);
    while ok(&hi_report) && hi < 100_000.0 {
        lo = hi;
        lo_report = hi_report;
        hi *= 2.0;
        hi_report = probe(hi);
    }

    for _ in 0..cfg.iterations {
        let mid = 0.5 * (lo + hi);
        let r = probe(mid);
        if ok(&r) {
            lo = mid;
            lo_report = r;
        } else {
            hi = mid;
        }
    }

    QpsResult {
        qps: lo,
        satisfaction: lo_report.overall_satisfaction(),
        avg_latency_s: lo_report.overall_avg_latency_s(),
        report: lo_report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veltair_compiler::{compile_model, CompilerOptions};
    use veltair_sched::Policy;
    use veltair_sim::MachineConfig;

    fn engine(policy: Policy) -> ServingEngine {
        let machine = MachineConfig::threadripper_3990x();
        let mut e = ServingEngine::new(machine.clone(), policy);
        e.register(compile_model(
            &veltair_models::mobilenet_v2(),
            &machine,
            &CompilerOptions::fast(),
        ));
        e
    }

    fn search_cfg() -> QpsSearchConfig {
        QpsSearchConfig {
            satisfaction_target: 0.95,
            queries: 120,
            seed: 3,
            iterations: 5,
        }
    }

    #[test]
    fn max_qps_is_bracketed_and_satisfied() {
        let e = engine(Policy::VeltairFull);
        let w = WorkloadSpec::single("mobilenet_v2", 10.0, 1);
        let r = max_qps_at_qos(&e, &w, &search_cfg());
        assert!(r.qps > 1.0, "qps {}", r.qps);
        assert!(r.satisfaction >= 0.95);
        // Above the found rate the target must eventually fail; probe 4x.
        let mut w4 = w.scaled_to(r.qps * 4.0);
        w4.total_queries = 120;
        let over = e.run(&w4, 3);
        assert!(
            over.overall_satisfaction() < 0.95,
            "4x rate still satisfied"
        );
    }

    #[test]
    fn full_beats_prema_on_throughput() {
        // The headline ordering of Fig. 12 at single-model granularity.
        let full = max_qps_at_qos(
            &engine(Policy::VeltairFull),
            &WorkloadSpec::single("mobilenet_v2", 10.0, 1),
            &search_cfg(),
        );
        let prema = max_qps_at_qos(
            &engine(Policy::Prema),
            &WorkloadSpec::single("mobilenet_v2", 10.0, 1),
            &search_cfg(),
        );
        assert!(
            full.qps > prema.qps,
            "FULL {} vs PREMA {}",
            full.qps,
            prema.qps
        );
    }
}
