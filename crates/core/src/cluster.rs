//! The cluster serving facade: fleet construction and resumable cluster
//! sessions, mirroring the single-machine builder → session → snapshot
//! API of [`engine`](crate::engine).
//!
//! Three layers, from offline to online:
//!
//! * [`ClusterBuilder`] — validated construction: a shared compiled-model
//!   registry, N (possibly heterogeneous) [`NodeSpec`]s, a
//!   [`RouterKind`], an [`AdmissionKind`], and per-model SLO overrides.
//! * [`ClusterEngine`] — compile-once, serve-many: batch fleet runs
//!   ([`ClusterEngine::run`] / [`ClusterEngine::try_run`]) and session
//!   creation. `Clone`-able and immutable, like
//!   [`ServingEngine`](crate::ServingEngine).
//! * [`ClusterSession`] — the open-loop path: queries are submitted while
//!   the fleet clock runs, per-node load and pooled statistics are read
//!   mid-run via [`snapshot`](ClusterSession::snapshot), and
//!   [`finish`](ClusterSession::finish) returns the final
//!   [`FleetReport`].

use veltair_cluster::{
    AdmissionKind, ClusterError, FailurePlan, Fleet, FleetReport, FleetSnapshot, NodeSpec,
    NodeState, RouterKind, RoutingMode, ScalePolicy, StepMode, TelemetrySnapshot, TraceConfig,
    TraceLog,
};
use veltair_compiler::{machine_key, CompiledModel, CompilerOptions, CompilerService};
use veltair_models::ModelSpec;
use veltair_sched::{QuerySpec, WorkloadSpec};
use veltair_sim::SimTime;

use crate::engine::EngineError;

impl From<ClusterError> for EngineError {
    fn from(e: ClusterError) -> Self {
        match e {
            ClusterError::NoNodes => EngineError::NoNodes,
            ClusterError::NoModels => EngineError::NoModels,
            ClusterError::UnknownModel { model } => EngineError::UnknownModel { model },
            ClusterError::NonFiniteArrival { arrival_s } => {
                EngineError::NonFiniteArrival { at_s: arrival_s }
            }
            ClusterError::InvalidDuration { dt_s } => EngineError::InvalidDuration { dt_s },
            ClusterError::RegistryMismatch { nodes, registries } => {
                EngineError::RegistryMismatch { nodes, registries }
            }
            ClusterError::UnknownNode { node } => EngineError::UnknownNode { node },
            ClusterError::FleetEmpty => EngineError::FleetEmpty,
            ClusterError::InvalidScalePolicy { field, value } => {
                EngineError::InvalidScalePolicy { field, value }
            }
        }
    }
}

/// Validated, fluent construction of a [`ClusterEngine`].
///
/// ```
/// use veltair_core::{ClusterEngine, NodeSpec, Policy, RouterKind};
/// use veltair_compiler::{compile_model, CompilerOptions};
/// use veltair_sim::MachineConfig;
///
/// let machine = MachineConfig::threadripper_3990x();
/// let engine = ClusterEngine::builder()
///     .model(compile_model(
///         &veltair_models::mobilenet_v2(),
///         &machine,
///         &CompilerOptions::fast(),
///     ))
///     .node(NodeSpec::new("big-0", machine.clone(), Policy::VeltairFull))
///     .node(NodeSpec::new("edge-0", MachineConfig::desktop_8core(), Policy::Prema))
///     .router(RouterKind::InterferenceAware)
///     .build()
///     .expect("valid cluster");
/// assert_eq!(engine.nodes().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct ClusterBuilder {
    models: Vec<CompiledModel>,
    specs: Vec<ModelSpec>,
    compiler: CompilerOptions,
    nodes: Vec<NodeSpec>,
    router: RouterKind,
    admission: AdmissionKind,
    step_mode: StepMode,
    routing_mode: RoutingMode,
    batch_eps_s: f64,
    slo_overrides: Vec<(String, f64)>,
    scale_policy: Option<ScalePolicy>,
    failure_plan: Option<FailurePlan>,
    telemetry: Option<TraceConfig>,
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        Self {
            models: Vec::new(),
            specs: Vec::new(),
            compiler: CompilerOptions::thorough(),
            nodes: Vec::new(),
            router: RouterKind::InterferenceAware,
            admission: AdmissionKind::AdmitAll,
            step_mode: StepMode::Sequential,
            routing_mode: RoutingMode::Indexed,
            batch_eps_s: 0.0,
            slo_overrides: Vec::new(),
            scale_policy: None,
            failure_plan: None,
            telemetry: None,
        }
    }
}

impl ClusterBuilder {
    /// Registers a compiled model in the shared fleet registry, replacing
    /// any previous model of the same name. Every node serves this exact
    /// artifact regardless of its own machine — use
    /// [`compile`](ClusterBuilder::compile) for per-node compilation.
    #[must_use]
    pub fn model(mut self, model: CompiledModel) -> Self {
        self.models.retain(|m| m.name != model.name);
        self.specs.retain(|s| s.graph.name != model.name);
        self.models.push(model);
        self
    }

    /// Registers a model *spec* for per-node compilation: at
    /// [`build`](ClusterBuilder::build) time a
    /// [`CompilerService`] compiles it once per distinct node machine, so
    /// every fleet member serves code compiled for its own hardware
    /// (replacing any previously registered model or spec of the same
    /// name). Nodes sharing a machine configuration share one compilation
    /// — the service caches by (model, machine fingerprint).
    #[must_use]
    pub fn compile(mut self, spec: ModelSpec) -> Self {
        self.models.retain(|m| m.name != spec.graph.name);
        self.specs.retain(|s| s.graph.name != spec.graph.name);
        self.specs.push(spec);
        self
    }

    /// Sets the compiler options used for per-node compilation of the
    /// specs registered via [`compile`](ClusterBuilder::compile)
    /// (default: [`CompilerOptions::thorough`]).
    #[must_use]
    pub fn compiler_options(mut self, options: CompilerOptions) -> Self {
        self.compiler = options;
        self
    }

    /// Adds a fleet member. Nodes may differ in machine *and* policy.
    #[must_use]
    pub fn node(mut self, spec: NodeSpec) -> Self {
        self.nodes.push(spec);
        self
    }

    /// Sets the routing policy (default: interference-aware).
    #[must_use]
    pub fn router(mut self, router: RouterKind) -> Self {
        self.router = router;
        self
    }

    /// Sets the admission policy (default: admit everything).
    #[must_use]
    pub fn admission(mut self, admission: AdmissionKind) -> Self {
        self.admission = admission;
        self
    }

    /// Sets how fleet nodes advance between routing instants (default:
    /// sequential). [`StepMode::Parallel`] farms node advancement out to
    /// a work-stealing pool with **bit-identical** results — it changes
    /// wall-clock time, never the simulation.
    #[must_use]
    pub fn step_mode(mut self, mode: StepMode) -> Self {
        self.step_mode = mode;
        self
    }

    /// Sets the coordinator's routing decision path (default:
    /// [`RoutingMode::Indexed`], the O(log n) incrementally maintained
    /// load index). [`RoutingMode::Scan`] forces the O(n) reference scan
    /// — **bit-identical results**, it only changes the
    /// `nodes_examined` op count.
    #[must_use]
    pub fn routing_mode(mut self, mode: RoutingMode) -> Self {
        self.routing_mode = mode;
        self
    }

    /// Sets the routing-instant micro-batching epsilon, seconds (default
    /// `0.0`, disabled): arrivals whose inter-arrival gap is below the
    /// epsilon are advanced inline on the coordinator instead of paying a
    /// stepper-pool round trip. **Bit-identical results** for any
    /// epsilon — it changes which thread advances the nodes, never what
    /// they compute.
    #[must_use]
    pub fn batch_epsilon(mut self, eps_s: f64) -> Self {
        self.batch_eps_s = eps_s;
        self
    }

    /// Overrides a registered model's end-to-end SLO (QoS latency target,
    /// seconds), applied at [`build`](ClusterBuilder::build) time — the
    /// same semantics as
    /// [`EngineBuilder::slo`](crate::EngineBuilder::slo).
    #[must_use]
    pub fn slo(mut self, model: &str, qos_s: f64) -> Self {
        self.slo_overrides.push((model.to_string(), qos_s));
        self
    }

    /// Attaches an autoscaling policy: every session's fleet consults the
    /// policy's [`Autoscaler`](veltair_cluster::Autoscaler) at the
    /// configured virtual-time cadence and grows or drains capacity under
    /// its guard rails. Autoscaled runs stay bit-deterministic.
    #[must_use]
    pub fn autoscale(mut self, policy: ScalePolicy) -> Self {
        self.scale_policy = Some(policy);
        self
    }

    /// Attaches a failure-injection plan: every session's fleet replays
    /// the plan's crash/stall/drain events at their exact virtual
    /// instants. Seeded plans make chaos runs reproducible.
    #[must_use]
    pub fn failure_plan(mut self, plan: FailurePlan) -> Self {
        self.failure_plan = Some(plan);
        self
    }

    /// Turns on the flight recorder for every session: query-lifecycle
    /// and node-lifecycle events are captured into a deterministic merged
    /// trace and the metrics registry is surfaced on snapshots and the
    /// final [`FleetReport`]. Tracing never perturbs the simulation (see
    /// [`Fleet::enable_telemetry`]).
    #[must_use]
    pub fn telemetry(mut self, config: TraceConfig) -> Self {
        self.telemetry = Some(config);
        self
    }

    /// Finalizes the cluster engine, compiling every spec registered via
    /// [`compile`](ClusterBuilder::compile) once per distinct node
    /// machine.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::NoModels`] if no model or spec was
    /// registered, [`EngineError::NoNodes`] if no node was added,
    /// [`EngineError::UnknownModel`] if an SLO override names an
    /// unregistered model, and [`EngineError::InvalidSlo`] if an override
    /// is not a positive, finite latency.
    pub fn build(self) -> Result<ClusterEngine, EngineError> {
        let Self {
            models,
            specs,
            compiler,
            nodes,
            router,
            admission,
            step_mode,
            routing_mode,
            batch_eps_s,
            slo_overrides,
            scale_policy,
            failure_plan,
            telemetry,
        } = self;
        if models.is_empty() && specs.is_empty() {
            return Err(EngineError::NoModels);
        }
        if nodes.is_empty() {
            return Err(EngineError::NoNodes);
        }

        let (mut registries, node_registry) = if specs.is_empty() {
            // Shared-registry fleet: one registry, every node points at it.
            (vec![models], vec![0; nodes.len()])
        } else {
            // Per-node compilation: one registry per distinct machine
            // fingerprint (in first-seen node order), shared models cloned
            // in as-is and specs compiled for that machine through the
            // caching service.
            let mut service = CompilerService::new(compiler);
            let mut keys: Vec<String> = Vec::new();
            let mut registries: Vec<Vec<CompiledModel>> = Vec::new();
            let mut node_registry = Vec::with_capacity(nodes.len());
            for node in &nodes {
                let key = machine_key(&node.machine);
                let idx = match keys.iter().position(|k| *k == key) {
                    Some(i) => i,
                    None => {
                        let mut registry = models.clone();
                        for spec in &specs {
                            registry.push(service.compile(spec, &node.machine));
                        }
                        keys.push(key);
                        registries.push(registry);
                        registries.len() - 1
                    }
                };
                node_registry.push(idx);
            }
            (registries, node_registry)
        };

        for registry in &mut registries {
            crate::engine::apply_slo_overrides(registry, slo_overrides.clone())?;
        }
        Ok(ClusterEngine {
            registries,
            node_registry,
            nodes,
            router,
            admission,
            step_mode,
            routing_mode,
            batch_eps_s,
            scale_policy,
            failure_plan,
            telemetry,
        })
    }
}

/// Compile-once, serve-many fleet facade: the per-machine compiled
/// registries, the node specifications, and the routing/admission
/// configuration.
///
/// The engine is immutable and `Clone`; every [`session`] builds a fresh
/// [`Fleet`] with identical behaviour, which is what makes fleet runs
/// reproducible: same engine + same workload + same seed = bit-identical
/// [`FleetReport`].
///
/// [`session`]: ClusterEngine::session
#[derive(Debug, Clone)]
pub struct ClusterEngine {
    /// One compiled registry per distinct node machine (a single shared
    /// registry when everything was registered pre-compiled).
    registries: Vec<Vec<CompiledModel>>,
    /// Registry index per fleet node.
    node_registry: Vec<usize>,
    nodes: Vec<NodeSpec>,
    router: RouterKind,
    admission: AdmissionKind,
    step_mode: StepMode,
    routing_mode: RoutingMode,
    batch_eps_s: f64,
    scale_policy: Option<ScalePolicy>,
    failure_plan: Option<FailurePlan>,
    telemetry: Option<TraceConfig>,
}

impl ClusterEngine {
    /// Starts validated, fluent construction.
    #[must_use]
    pub fn builder() -> ClusterBuilder {
        ClusterBuilder::default()
    }

    /// The fleet-level model catalog (the first node's registry):
    /// submissions are validated against these names and SLOs. With
    /// per-node compilation other nodes may serve different artifacts of
    /// the same models — see
    /// [`registry_for_node`](ClusterEngine::registry_for_node).
    #[must_use]
    pub fn models(&self) -> &[CompiledModel] {
        &self.registries[self.node_registry[0]]
    }

    /// The distinct per-machine compiled registries, in first-seen node
    /// order. A single-element slice means every node shares one
    /// registry.
    #[must_use]
    pub fn registries(&self) -> &[Vec<CompiledModel>] {
        &self.registries
    }

    /// The compiled registry a given fleet node serves from.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn registry_for_node(&self, node: usize) -> &[CompiledModel] {
        &self.registries[self.node_registry[node]]
    }

    /// Whether nodes serve per-machine compiled artifacts (true once
    /// [`ClusterBuilder::compile`] was used with heterogeneous machines).
    #[must_use]
    pub fn per_node_compilation(&self) -> bool {
        self.registries.len() > 1
    }

    /// The fleet members.
    #[must_use]
    pub fn nodes(&self) -> &[NodeSpec] {
        &self.nodes
    }

    /// The configured routing policy.
    #[must_use]
    pub fn router(&self) -> RouterKind {
        self.router
    }

    /// The configured admission policy.
    #[must_use]
    pub fn admission(&self) -> AdmissionKind {
        self.admission
    }

    /// The configured node-advancement mode.
    #[must_use]
    pub fn step_mode(&self) -> StepMode {
        self.step_mode
    }

    /// The configured routing decision path.
    #[must_use]
    pub fn routing_mode(&self) -> RoutingMode {
        self.routing_mode
    }

    /// The configured micro-batching epsilon, seconds (`0.0` = disabled).
    #[must_use]
    pub fn batch_epsilon(&self) -> f64 {
        self.batch_eps_s
    }

    /// The attached autoscaling policy, if any.
    #[must_use]
    pub fn scale_policy(&self) -> Option<&ScalePolicy> {
        self.scale_policy.as_ref()
    }

    /// The attached failure-injection plan, if any.
    #[must_use]
    pub fn failure_plan(&self) -> Option<&FailurePlan> {
        self.failure_plan.as_ref()
    }

    /// The flight-recorder configuration sessions start with, if
    /// telemetry was enabled on the builder.
    #[must_use]
    pub fn telemetry_config(&self) -> Option<TraceConfig> {
        self.telemetry
    }

    /// Opens a resumable cluster session: a fleet over this engine's
    /// registry and nodes, accepting arrivals and snapshot reads while
    /// the lockstep clock runs. The session borrows the engine's models;
    /// the engine itself stays immutable.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::NoModels`] / [`EngineError::NoNodes`] if
    /// the engine was constructed without validation (both are unreachable
    /// through [`ClusterBuilder::build`]).
    pub fn session(&self) -> Result<ClusterSession<'_>, EngineError> {
        let node_models: Vec<&[CompiledModel]> = self
            .node_registry
            .iter()
            .map(|&i| self.registries[i].as_slice())
            .collect();
        let mut fleet = Fleet::with_node_registries(
            self.models(),
            node_models,
            &self.nodes,
            self.router.build(),
            self.admission.build(),
        )?
        .with_step_mode(self.step_mode)
        .with_routing_mode(self.routing_mode)
        .with_batch_epsilon(self.batch_eps_s);
        if let Some(policy) = &self.scale_policy {
            fleet.set_scale_policy(policy.clone());
        }
        if let Some(plan) = &self.failure_plan {
            fleet.set_failure_plan(plan.clone());
        }
        if let Some(config) = self.telemetry {
            fleet.enable_telemetry(config);
        }
        Ok(ClusterSession { fleet })
    }

    /// Serves a workload's query stream across the fleet and returns the
    /// final report.
    ///
    /// # Panics
    ///
    /// Panics if the workload references unregistered models; use
    /// [`ClusterEngine::try_run`] to handle invalid input gracefully.
    #[must_use]
    pub fn run(&self, workload: &WorkloadSpec, seed: u64) -> FleetReport {
        self.try_run(workload, seed)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Serves a workload's query stream across the fleet, surfacing
    /// invalid input as a typed [`EngineError`].
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::UnknownModel`] if the workload references
    /// unregistered models.
    pub fn try_run(&self, workload: &WorkloadSpec, seed: u64) -> Result<FleetReport, EngineError> {
        let mut session = self.session()?;
        session.submit_stream(workload, seed)?;
        Ok(session.finish())
    }
}

/// A resumable fleet run: streaming arrivals in, per-node load and pooled
/// statistics out, with the lockstep clock under caller control. Created
/// by [`ClusterEngine::session`].
#[derive(Debug)]
pub struct ClusterSession<'e> {
    fleet: Fleet<'e>,
}

impl ClusterSession<'_> {
    /// Fleet clock, seconds.
    #[must_use]
    pub fn now_s(&self) -> f64 {
        self.fleet.now_s()
    }

    /// Whether every submitted query has been resolved (completed or
    /// shed) and the front door is empty.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.fleet.is_idle()
    }

    /// Submits one query arriving at `at_s` seconds of fleet clock
    /// (clamped to *now* if already past). Returns the fleet-level
    /// submission sequence number.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::UnknownModel`] if `model` is not registered
    /// and [`EngineError::NonFiniteArrival`] if `at_s` is NaN or
    /// infinite.
    pub fn submit(&mut self, model: &str, at_s: f64) -> Result<u64, EngineError> {
        Ok(self.fleet.submit(&QuerySpec {
            model: model.to_string(),
            arrival: SimTime(at_s),
        })?)
    }

    /// Submits a whole workload's generated stream, offset by the fleet's
    /// current clock. Atomic: an error means nothing was submitted.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::UnknownModel`] if the workload references
    /// unregistered models.
    pub fn submit_stream(
        &mut self,
        workload: &WorkloadSpec,
        seed: u64,
    ) -> Result<Vec<u64>, EngineError> {
        Ok(self.fleet.submit_stream(workload, seed)?)
    }

    /// Runs the fleet up to `t_s` seconds of fleet clock: every due
    /// arrival is routed at its own instant, then all nodes advance to
    /// exactly `t_s` in lockstep.
    pub fn run_until(&mut self, t_s: f64) {
        self.fleet.run_until(t_s);
    }

    /// Runs the fleet for another `dt_s` seconds of fleet clock.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidDuration`] if `dt_s` is NaN,
    /// infinite, or not strictly positive.
    pub fn run_for(&mut self, dt_s: f64) -> Result<(), EngineError> {
        Ok(self.fleet.run_for(dt_s)?)
    }

    /// Switches how this session's fleet advances its nodes between
    /// routing instants, at any point in the run. Both modes are
    /// bit-identical (see [`StepMode`]).
    pub fn set_step_mode(&mut self, mode: StepMode) {
        self.fleet.set_step_mode(mode);
    }

    /// The session's active node-advancement mode.
    #[must_use]
    pub fn step_mode(&self) -> StepMode {
        self.fleet.step_mode()
    }

    /// Switches this session's fleet between the O(log n) indexed routing
    /// path and the O(n) reference scan, at any point in the run. Both
    /// are bit-identical (see [`RoutingMode`]); only op counts change.
    pub fn set_routing_mode(&mut self, mode: RoutingMode) {
        self.fleet.set_routing_mode(mode);
    }

    /// The session's active routing decision path.
    #[must_use]
    pub fn routing_mode(&self) -> RoutingMode {
        self.fleet.routing_mode()
    }

    /// Sets this session's micro-batching epsilon, seconds (non-finite or
    /// negative values clamp to `0.0` = disabled). Bit-identical for any
    /// value; only stepper round-trip counts change.
    pub fn set_batch_epsilon(&mut self, eps_s: f64) {
        self.fleet.set_batch_epsilon(eps_s);
    }

    /// The session's active micro-batching epsilon, seconds.
    #[must_use]
    pub fn batch_epsilon(&self) -> f64 {
        self.fleet.batch_epsilon()
    }

    /// Attaches a fresh node to the fleet at the current instant and
    /// returns its roster index. The node serves the fleet catalog and
    /// becomes routable immediately.
    pub fn add_node(&mut self, spec: &NodeSpec) -> usize {
        self.fleet.add_node(spec)
    }

    /// Gracefully drains a node at the current instant: it stops taking
    /// new queries, its queued-but-unstarted work re-routes, and its
    /// in-flight work runs to completion.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::UnknownNode`] for an out-of-range index and
    /// [`EngineError::FleetEmpty`] if the drain would leave zero routable
    /// nodes.
    pub fn drain_node(&mut self, node: usize) -> Result<(), EngineError> {
        Ok(self.fleet.drain_node(node)?)
    }

    /// Kills a node at the current instant: all of its incomplete work
    /// (queued *and* in-flight) re-routes to the survivors; only work it
    /// already completed stays in the report.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::UnknownNode`] for an out-of-range index and
    /// [`EngineError::FleetEmpty`] if the kill would leave zero routable
    /// nodes.
    pub fn kill_node(&mut self, node: usize) -> Result<(), EngineError> {
        Ok(self.fleet.kill_node(node)?)
    }

    /// Per-roster-slot lifecycle states (departed nodes keep their
    /// slots).
    #[must_use]
    pub fn node_states(&self) -> &[NodeState] {
        self.fleet.node_states()
    }

    /// Live (routable) node count.
    #[must_use]
    pub fn live_nodes(&self) -> usize {
        self.fleet.live_nodes()
    }

    /// A point-in-time fleet view: per-node loads, routed/completed
    /// counts, shed/deferral totals, and the pooled mid-run report. Does
    /// not perturb the run.
    #[must_use]
    pub fn snapshot(&self) -> FleetSnapshot {
        self.fleet.snapshot()
    }

    /// Turns on the flight recorder mid-session (usually configured up
    /// front via [`ClusterBuilder::telemetry`]). Call before submitting
    /// work: earlier queries cannot be retroactively attributed.
    pub fn enable_telemetry(&mut self, config: TraceConfig) {
        self.fleet.enable_telemetry(config);
    }

    /// Whether the flight recorder is on for this session.
    #[must_use]
    pub fn telemetry_enabled(&self) -> bool {
        self.fleet.telemetry_enabled()
    }

    /// A point-in-time copy of the metrics registry — event counts,
    /// latency histograms, the violation-frequency table — when telemetry
    /// is enabled. Pulls node buffers first, so figures are current to
    /// the fleet clock.
    pub fn telemetry_snapshot(&mut self) -> Option<TelemetrySnapshot> {
        self.fleet.telemetry_snapshot()
    }

    /// The merged lifecycle trace so far: deterministic `(virtual time,
    /// track)` order, exportable via
    /// [`TraceLog::to_chrome_json`]. `None` when telemetry is off.
    pub fn trace_log(&mut self) -> Option<TraceLog> {
        self.fleet.trace_log()
    }

    /// Finishes the session: routes every remaining arrival, drains all
    /// nodes, and returns the final [`FleetReport`].
    #[must_use]
    pub fn finish(self) -> FleetReport {
        self.fleet.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veltair_cluster::SloAdmissionConfig;
    use veltair_compiler::{compile_model, CompilerOptions};
    use veltair_sched::Policy;
    use veltair_sim::MachineConfig;

    fn compiled(name: &str) -> CompiledModel {
        let machine = MachineConfig::threadripper_3990x();
        compile_model(
            &veltair_models::by_name(name).expect("zoo model"),
            &machine,
            &CompilerOptions::fast(),
        )
    }

    fn two_node_engine() -> ClusterEngine {
        ClusterEngine::builder()
            .model(compiled("mobilenet_v2"))
            .node(NodeSpec::new(
                "big-0",
                MachineConfig::threadripper_3990x(),
                Policy::VeltairFull,
            ))
            .node(NodeSpec::new(
                "edge-0",
                MachineConfig::desktop_8core(),
                Policy::Prema,
            ))
            .router(RouterKind::LeastOutstanding)
            .build()
            .expect("valid cluster")
    }

    #[test]
    fn builder_validates_models_nodes_and_slos() {
        assert_eq!(
            ClusterEngine::builder().build().unwrap_err(),
            EngineError::NoModels
        );
        assert_eq!(
            ClusterEngine::builder()
                .model(compiled("mobilenet_v2"))
                .build()
                .unwrap_err(),
            EngineError::NoNodes
        );
        assert!(matches!(
            ClusterEngine::builder()
                .model(compiled("mobilenet_v2"))
                .node(NodeSpec::new(
                    "n",
                    MachineConfig::threadripper_3990x(),
                    Policy::VeltairFull
                ))
                .slo("mobilenet_v2", f64::NAN)
                .build()
                .unwrap_err(),
            EngineError::InvalidSlo { .. }
        ));
        let e = ClusterEngine::builder()
            .model(compiled("mobilenet_v2"))
            .node(NodeSpec::new(
                "n",
                MachineConfig::threadripper_3990x(),
                Policy::VeltairFull,
            ))
            .slo("mobilenet_v2", 0.2)
            .build()
            .expect("valid");
        assert!((e.models()[0].qos_s - 0.2).abs() < 1e-12);
    }

    #[test]
    fn cluster_run_serves_every_query_without_admission_control() {
        let e = two_node_engine();
        let w = WorkloadSpec::single("mobilenet_v2", 80.0, 60);
        let report = e.run(&w, 3);
        assert_eq!(report.shed, 0);
        assert_eq!(report.merged.total_queries(), 60);
        assert_eq!(report.per_node.len(), 2);
        assert_eq!(report.routed_per_node.iter().sum::<u64>(), 60);
        // Both nodes did real work under least-outstanding routing.
        assert!(report.routed_per_node.iter().all(|&n| n > 0));
    }

    #[test]
    fn session_mirrors_engine_run() {
        let e = two_node_engine();
        let w = WorkloadSpec::single("mobilenet_v2", 80.0, 40);
        let batch = e.run(&w, 9);
        let mut s = e.session().expect("valid");
        s.submit_stream(&w, 9).expect("registered");
        assert_eq!(s.finish(), batch);
    }

    #[test]
    fn parallel_step_mode_threads_through_the_builder() {
        let e = two_node_engine();
        assert_eq!(e.step_mode(), StepMode::Sequential);
        let w = WorkloadSpec::single("mobilenet_v2", 80.0, 40);
        let sequential = e.run(&w, 9);

        let mut builder = ClusterEngine::builder()
            .model(compiled("mobilenet_v2"))
            .router(RouterKind::LeastOutstanding)
            .step_mode(StepMode::Parallel { threads: 3 });
        for n in [
            NodeSpec::new(
                "big-0",
                MachineConfig::threadripper_3990x(),
                Policy::VeltairFull,
            ),
            NodeSpec::new("edge-0", MachineConfig::desktop_8core(), Policy::Prema),
        ] {
            builder = builder.node(n);
        }
        let parallel_engine = builder.build().expect("valid cluster");
        assert_eq!(
            parallel_engine.step_mode(),
            StepMode::Parallel { threads: 3 }
        );
        let parallel = parallel_engine.run(&w, 9);
        assert_eq!(parallel, sequential, "step mode changed the simulation");

        // Mid-session switching is also allowed and harmless. The
        // checkpointed run makes extra clock-advance sweeps, so its
        // coordinator round-trip counter legitimately differs from the
        // batch run's; the simulation outcome must not.
        let mut s = e.session().expect("valid");
        s.submit_stream(&w, 9).expect("registered");
        s.run_until(0.05);
        s.set_step_mode(StepMode::Parallel { threads: 2 });
        assert_eq!(s.step_mode(), StepMode::Parallel { threads: 2 });
        s.run_until(0.1);
        s.set_step_mode(StepMode::Sequential);
        let mut stepped = s.finish();
        assert!(stepped.coordinator.pool_round_trips >= sequential.coordinator.pool_round_trips);
        stepped.coordinator = sequential.coordinator;
        assert_eq!(stepped, sequential);
    }

    #[test]
    fn run_for_rejects_invalid_durations() {
        let e = two_node_engine();
        let mut s = e.session().expect("valid");
        s.submit_stream(&WorkloadSpec::single("mobilenet_v2", 80.0, 10), 2)
            .expect("registered");
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(
                matches!(s.run_for(bad), Err(EngineError::InvalidDuration { .. })),
                "duration {bad} was accepted"
            );
        }
        assert!(
            (s.now_s() - 0.0).abs() < 1e-12,
            "rejected run moved the clock"
        );
        s.run_for(0.25).expect("positive finite duration");
        assert!((s.now_s() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn session_snapshots_track_per_node_state() {
        let e = two_node_engine();
        let mut s = e.session().expect("valid");
        s.submit_stream(&WorkloadSpec::single("mobilenet_v2", 200.0, 50), 5)
            .expect("registered");
        s.run_until(0.1);
        let snap = s.snapshot();
        assert!((snap.now_s - 0.1).abs() < 1e-12);
        assert_eq!(snap.nodes.len(), 2);
        assert_eq!(snap.nodes[0].name, "big-0");
        assert_eq!(snap.submitted, 50);
        assert!(snap.completed <= 50);
        let report = s.finish();
        assert_eq!(report.merged.total_queries(), 50);
    }

    #[test]
    fn unknown_models_are_rejected_atomically() {
        let e = two_node_engine();
        let mut s = e.session().expect("valid");
        assert!(matches!(
            s.submit("bert_large", 0.0),
            Err(EngineError::UnknownModel { .. })
        ));
        let bad = WorkloadSpec::mix(&[("mobilenet_v2", 10.0), ("bert_large", 10.0)], 10);
        assert!(matches!(
            s.submit_stream(&bad, 1),
            Err(EngineError::UnknownModel { .. })
        ));
        assert_eq!(s.snapshot().submitted, 0);
    }

    #[test]
    fn slo_admission_sheds_under_crushing_load() {
        let e = ClusterEngine::builder()
            .model(compiled("mobilenet_v2"))
            .node(NodeSpec::new(
                "solo",
                MachineConfig::desktop_8core(),
                Policy::VeltairFull,
            ))
            .router(RouterKind::RoundRobin)
            .admission(AdmissionKind::SloAware(SloAdmissionConfig::default()))
            .build()
            .expect("valid");
        // A small edge node offered far more than it can serve: admission
        // control must shed rather than queue without bound.
        let report = e.run(&WorkloadSpec::single("mobilenet_v2", 2000.0, 300), 7);
        assert!(report.shed > 0, "no shedding under crushing load");
        assert_eq!(report.offered(), 300);
        // The queries that *were* admitted fared far better than the
        // admit-all counterfactual.
        let admit_all = ClusterEngine::builder()
            .model(compiled("mobilenet_v2"))
            .node(NodeSpec::new(
                "solo",
                MachineConfig::desktop_8core(),
                Policy::VeltairFull,
            ))
            .router(RouterKind::RoundRobin)
            .build()
            .expect("valid")
            .run(&WorkloadSpec::single("mobilenet_v2", 2000.0, 300), 7);
        assert!(
            report.merged.overall_satisfaction() >= admit_all.merged.overall_satisfaction(),
            "shedding did not protect admitted queries: {} vs {}",
            report.merged.overall_satisfaction(),
            admit_all.merged.overall_satisfaction()
        );
    }
}
