//! A pinned scenario library: named, seeded, end-to-end cluster serving
//! situations with explicit SLO expectations.
//!
//! Each [`Scenario`] bundles everything a run needs — a fleet topology,
//! a trace-shaped workload, an optional [`FailurePlan`], an optional
//! [`ScalePolicy`], and a pinned seed — plus the [`SloExpectation`] the
//! run is asserted against. The library serves three purposes:
//!
//! 1. **Regression pins.** Every scenario is bit-deterministic for its
//!    seed under both [`StepMode`]s, so CI can assert whole-report
//!    equality and SLO floors release after release.
//! 2. **Capacity planning.** `examples/capacity_planning.rs` tabulates
//!    what-if outcomes (policies × scenarios) from the same definitions.
//! 3. **Vocabulary.** "Flash crowd" or "failover" mean exactly one
//!    reproducible thing in review discussions.
//!
//! The five pinned scenarios:
//!
//! | name | shape | exercises |
//! |------|-------|-----------|
//! | `steady` | flat Poisson at moderate load | the happy path |
//! | `diurnal` | day/night trace cycle + autoscaler | scale-out *and* scale-in |
//! | `flash-crowd` | 8× surge from near-idle | provisioning-delay lag |
//! | `failover` | node crash mid-run + autoscaler | re-routing and recovery |
//! | `rolling-upgrade` | staggered drains + replacement joins | graceful surrender |

use veltair_cluster::{
    AdmissionKind, AutoscalerConfig, AutoscalerKind, FailurePlan, FleetReport, NodeSpec,
    RouterKind, ScalePolicy, StepMode,
};
use veltair_compiler::{compile_model, CompilerOptions};
use veltair_sched::{Policy, WorkloadSpec};
use veltair_sim::MachineConfig;

use crate::cluster::{ClusterBuilder, ClusterEngine};

/// What a scenario promises about its own outcome. Deliberately loose
/// bounds: these are regression rails ("failover still completes
/// everything"), not performance marketing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloExpectation {
    /// Minimum overall QoS satisfaction over completed queries, `0..=1`.
    pub min_satisfaction: f64,
    /// Every submitted query must resolve (completed or shed) — always
    /// true for these scenarios; pinned so conservation regressions trip
    /// a named scenario, not just a property test.
    pub all_resolved: bool,
    /// Minimum number of queries that must complete (shed ceiling,
    /// phrased as a floor).
    pub min_completed: u64,
}

/// A named, seeded, reproducible cluster serving situation.
///
/// The fleet definition is kept as a builder plus a pinned autoscaling
/// posture so what-if tools can replay the *same* topology, workload,
/// failures, and seed under a different posture
/// ([`run_with`](Scenario::run_with)) — that comparison is the whole
/// point of a capacity-planning table.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The scenario's stable name (used in tables, CI, and docs).
    pub name: &'static str,
    /// One-line description for tables.
    pub blurb: &'static str,
    /// Fleet topology, routing, admission, and failure plan — everything
    /// except the autoscaling posture.
    pub builder: ClusterBuilder,
    /// The pinned autoscaling posture (`None` = fixed fleet).
    pub scale: Option<ScalePolicy>,
    /// The offered workload.
    pub workload: WorkloadSpec,
    /// The pinned seed.
    pub seed: u64,
    /// What the run must deliver under the pinned posture.
    pub expect: SloExpectation,
}

impl Scenario {
    /// Builds the scenario's engine under its pinned posture.
    #[must_use]
    pub fn engine(&self) -> ClusterEngine {
        self.engine_with(self.scale.clone())
    }

    /// Builds the scenario's engine under an explicit posture override.
    #[must_use]
    pub fn engine_with(&self, scale: Option<ScalePolicy>) -> ClusterEngine {
        let mut builder = self.builder.clone();
        if let Some(policy) = scale {
            builder = builder.autoscale(policy);
        }
        builder.build().expect("library scenarios are valid")
    }

    /// Runs the scenario to completion under its pinned posture.
    #[must_use]
    pub fn run(&self, step_mode: StepMode) -> FleetReport {
        self.run_with(self.scale.clone(), step_mode)
    }

    /// Runs the scenario's topology, workload, failures, and seed under
    /// an explicit autoscaling posture (`None` = fixed fleet) — the
    /// what-if entry point. Note [`SloExpectation`]s are pinned to the
    /// scenario's own posture; overridden runs are for comparison, not
    /// for [`check`](Scenario::check).
    #[must_use]
    pub fn run_with(&self, scale: Option<ScalePolicy>, step_mode: StepMode) -> FleetReport {
        let engine = self.engine_with(scale);
        let mut session = engine.session().expect("library scenarios are valid");
        session.set_step_mode(step_mode);
        session
            .submit_stream(&self.workload, self.seed)
            .expect("scenario workloads serve registered models");
        session.finish()
    }

    /// Checks a report against the scenario's [`SloExpectation`],
    /// returning the violations as human-readable strings (empty = pass).
    #[must_use]
    pub fn check(&self, report: &FleetReport) -> Vec<String> {
        let mut violations = Vec::new();
        let sat = report.merged.overall_satisfaction();
        if sat < self.expect.min_satisfaction {
            violations.push(format!(
                "satisfaction {:.3} below the {:.3} floor",
                sat, self.expect.min_satisfaction
            ));
        }
        let completed = report.merged.total_queries() as u64;
        if self.expect.all_resolved && completed + report.shed != report.submitted {
            violations.push(format!(
                "unresolved queries: {completed} completed + {} shed != {} submitted",
                report.shed, report.submitted
            ));
        }
        if completed < self.expect.min_completed {
            violations.push(format!(
                "only {completed} completed, floor is {}",
                self.expect.min_completed
            ));
        }
        violations
    }
}

/// The standard scenario machine: every node (and every autoscaled
/// clone) is an 8-core desktop, small enough that the pinned workloads
/// actually stress it.
fn node_machine() -> MachineConfig {
    MachineConfig::desktop_8core()
}

fn node(name: &str) -> NodeSpec {
    NodeSpec::new(name, node_machine(), Policy::VeltairFull)
}

fn base_builder(nodes: usize) -> ClusterBuilder {
    let machine = node_machine();
    let model = compile_model(
        &veltair_models::mobilenet_v2(),
        &machine,
        &CompilerOptions::fast(),
    );
    let mut b = ClusterEngine::builder()
        .model(model)
        .router(RouterKind::LeastOutstanding)
        .admission(AdmissionKind::AdmitAll);
    for i in 0..nodes {
        b = b.node(node(&format!("node-{i}")));
    }
    b
}

/// The default scale policy the elastic scenarios share: hysteresis
/// scaler, 0.25 s ticks, 0.5 s provisioning delay, growing from the
/// given floor up to `max` clones of the standard node.
#[must_use]
pub fn default_scale_policy(min_nodes: usize, max_nodes: usize) -> ScalePolicy {
    ScalePolicy::try_new(
        AutoscalerKind::Hysteresis(AutoscalerConfig::default()),
        node("auto"),
        min_nodes,
        max_nodes,
        0.25,
        0.5,
    )
    .expect("the library's default scale policy is valid")
}

/// `steady`: two nodes, flat Poisson at comfortable load. The happy-path
/// pin — high satisfaction, nothing shed, nothing elastic.
#[must_use]
pub fn steady() -> Scenario {
    Scenario {
        name: "steady",
        blurb: "flat Poisson, two nodes, comfortable load",
        builder: base_builder(2),
        scale: None,
        workload: WorkloadSpec::single("mobilenet_v2", 120.0, 360),
        seed: 11,
        expect: SloExpectation {
            min_satisfaction: 0.95,
            all_resolved: true,
            min_completed: 360,
        },
    }
}

/// `diurnal`: a day/night rate cycle (3 "days" of 2 s each, daytime at
/// 3× the nightly rate) over one seed node with an autoscaler. The pin
/// exercises both directions: scale-out into the day, scale-in through
/// the night.
#[must_use]
pub fn diurnal() -> Scenario {
    Scenario {
        name: "diurnal",
        blurb: "day/night trace cycle, autoscaler follows both ways",
        builder: base_builder(1),
        scale: Some(default_scale_policy(1, 4)),
        workload: WorkloadSpec::try_trace("mobilenet_v2", 90.0, 540, &[(1.0, 3.0), (1.0, 0.3)])
            .expect("valid trace"),
        seed: 23,
        expect: SloExpectation {
            min_satisfaction: 0.70,
            all_resolved: true,
            min_completed: 540,
        },
    }
}

/// `flash-crowd`: near-idle, then an 8× surge for one second, then calm.
/// The provisioning delay guarantees the surge front lands on cold
/// capacity — the pin is that the fleet absorbs it without losing
/// queries, not that it meets every deadline.
#[must_use]
pub fn flash_crowd() -> Scenario {
    Scenario {
        name: "flash-crowd",
        blurb: "8x surge onto near-idle capacity, autoscaler catches up",
        builder: base_builder(1),
        scale: Some(default_scale_policy(1, 6)),
        workload: WorkloadSpec::try_trace(
            "mobilenet_v2",
            60.0,
            480,
            &[(1.5, 0.5), (1.0, 8.0), (2.0, 0.5)],
        )
        .expect("valid trace"),
        seed: 37,
        expect: SloExpectation {
            min_satisfaction: 0.75,
            all_resolved: true,
            min_completed: 480,
        },
    }
}

/// `failover`: a two-node fleet loses one node mid-run; the autoscaler
/// detects the pressure on the survivor and provisions replacements.
/// Everything completes, and — asserted by `tests/scenarios.rs` against
/// the `run_with(None, ..)` baseline — with a better SLO outcome than
/// leaving the survivor on its own.
#[must_use]
pub fn failover() -> Scenario {
    // Node 1 crashes 0.8 s in, mid-stream: its queue and in-flight work
    // re-route to node 0, which is now alone against a rate sized for
    // two nodes — without replacements the survivor drowns.
    let plan = FailurePlan::new().try_crash(0.8, 1).expect("valid instant");
    Scenario {
        name: "failover",
        blurb: "node crash mid-run, autoscaler provisions replacements",
        builder: base_builder(2).failure_plan(plan),
        scale: Some(default_scale_policy(1, 4)),
        workload: WorkloadSpec::single("mobilenet_v2", 210.0, 630),
        seed: 41,
        expect: SloExpectation {
            min_satisfaction: 0.90,
            all_resolved: true,
            min_completed: 630,
        },
    }
}

/// `rolling-upgrade`: a three-node fleet drains one node at a time on a
/// stagger while replacement capacity joins via the autoscaler template.
/// Drains are graceful — in-flight work finishes on the old nodes — so
/// the pin is zero lost queries and a still-healthy SLO.
#[must_use]
pub fn rolling_upgrade() -> Scenario {
    let plan = FailurePlan::new()
        .try_drain(0.6, 0)
        .and_then(|p| p.try_drain(1.4, 1))
        .and_then(|p| p.try_drain(2.2, 2))
        .expect("valid instants");
    Scenario {
        name: "rolling-upgrade",
        blurb: "staggered graceful drains with autoscaled replacements",
        builder: base_builder(3).failure_plan(plan),
        // Pre-warmed replacements: zero provisioning delay, floor 2.
        scale: Some(
            ScalePolicy::try_new(
                AutoscalerKind::Hysteresis(AutoscalerConfig::default()),
                node("upgraded"),
                2,
                5,
                0.2,
                0.0,
            )
            .expect("valid policy"),
        ),
        workload: WorkloadSpec::single("mobilenet_v2", 150.0, 450),
        seed: 53,
        expect: SloExpectation {
            min_satisfaction: 0.90,
            all_resolved: true,
            min_completed: 450,
        },
    }
}

/// All five pinned scenarios, in documentation order.
#[must_use]
pub fn all_scenarios() -> Vec<Scenario> {
    vec![
        steady(),
        diurnal(),
        flash_crowd(),
        failover(),
        rolling_upgrade(),
    ]
}
