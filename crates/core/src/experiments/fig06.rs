//! Figure 6: multiple code versions of one conv layer under different
//! interference levels. (a) four versions at four levels; (b) the full
//! pressure sweep with the best-of-all envelope.

use veltair_compiler::{search, CompilerOptions, Sample};
use veltair_sim::{execute, Interference};
use veltair_tensor::{FeatureMap, FusedUnit, GemmView, Layer};

use super::ExpContext;

/// Cores the layer is granted in the study.
const CORES: u32 = 16;

/// Figure 6 data. "Performance" is normalized throughput (1 / latency,
/// scaled so impl. 1 in isolation = 1000, echoing the paper's axis).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig06 {
    /// Schedules of the four versions (impl. 1 = isolation-optimal).
    pub impls: Vec<String>,
    /// (level label, per-impl performance) — panel (a).
    pub panel_a: Vec<(String, Vec<f64>)>,
    /// (pressure, per-impl performance + envelope last) — panel (b).
    pub panel_b: Vec<(f64, Vec<f64>)>,
}

/// The paper's exemplar layer: 14x14 feature map, 256 -> 256 channels,
/// 3x3 kernel (§3.3).
#[must_use]
pub fn exemplar_unit() -> (FusedUnit, GemmView) {
    let l = Layer::conv2d(
        "fig6_conv",
        FeatureMap::nchw(1, 256, 14, 14),
        256,
        (3, 3),
        (1, 1),
        (1, 1),
    );
    let g = GemmView::of(&l).expect("conv has a GEMM view");
    (FusedUnit::solo(l), g)
}

/// Runs the Figure 6 study: the "naive extension" of the auto-scheduler
/// that searches the best implementation at each of four interference
/// levels (zero / low / medium / high).
#[must_use]
pub fn run(ctx: &ExpContext) -> Fig06 {
    let (unit, gemm) = exemplar_unit();
    let opts = CompilerOptions {
        search_iterations: 512,
        ..CompilerOptions::fast()
    };
    let population = search(&unit, &gemm, &ctx.machine, &opts, 0xF166);

    // Best sample at each target level, deduplicated.
    let levels = [0.0, 0.45, 0.7, 0.95];
    let mut chosen: Vec<Sample> = Vec::new();
    for &lvl in &levels {
        let mut ranked: Vec<&Sample> = population.iter().collect();
        ranked.sort_by(|a, b| {
            let la = execute(&a.profile, CORES, Interference::level(lvl), &ctx.machine).latency_s;
            let lb = execute(&b.profile, CORES, Interference::level(lvl), &ctx.machine).latency_s;
            la.total_cmp(&lb)
        });
        let pick = ranked
            .iter()
            .find(|s| !chosen.iter().any(|c| c.schedule == s.schedule))
            .unwrap_or(&ranked[0]);
        chosen.push((*pick).clone());
    }

    let perf = |s: &Sample, lvl: f64| {
        1.0 / execute(&s.profile, CORES, Interference::level(lvl), &ctx.machine).latency_s
    };
    let norm = perf(&chosen[0], 0.0) / 1000.0;

    let panel_a = [
        ("Isolated", 0.0),
        ("Low", 0.45),
        ("Med", 0.7),
        ("High", 0.95),
    ]
    .iter()
    .map(|(label, lvl)| {
        (
            (*label).to_string(),
            chosen.iter().map(|s| perf(s, *lvl) / norm).collect(),
        )
    })
    .collect();

    let panel_b = (0..=10)
        .map(|i| {
            let lvl = f64::from(i) / 10.0;
            let mut row: Vec<f64> = chosen.iter().map(|s| perf(s, lvl) / norm).collect();
            let envelope = row.iter().copied().fold(0.0, f64::max);
            row.push(envelope);
            (lvl, row)
        })
        .collect();

    Fig06 {
        impls: chosen.iter().map(|s| s.schedule.to_string()).collect(),
        panel_a,
        panel_b,
    }
}

impl std::fmt::Display for Fig06 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 6: versions of conv 14x14 C(256,256) K3 under interference"
        )?;
        for (i, s) in self.impls.iter().enumerate() {
            writeln!(f, "  impl.{} = {s}", i + 1)?;
        }
        writeln!(f, "Figure 6a: performance (impl.1 isolated = 1000)")?;
        for (label, row) in &self.panel_a {
            write!(f, "  {label:<9}")?;
            for v in row {
                write!(f, " {v:>7.0}")?;
            }
            writeln!(f)?;
        }
        writeln!(
            f,
            "Figure 6b: performance vs pressure (last column = best envelope)"
        )?;
        for (lvl, row) in &self.panel_b {
            write!(f, "  {:>4.0}%", lvl * 100.0)?;
            for v in row {
                write!(f, " {v:>7.0}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig06_reproduces_crossover_and_cliff() {
        let ctx = ExpContext::new();
        let fig = run(&ctx);
        assert_eq!(fig.impls.len(), 4);
        let iso = &fig.panel_a[0].1;
        let high = &fig.panel_a[3].1;
        // impl.1 wins in isolation; it is not the winner under high
        // pressure, where a later (more parallel) version takes over.
        let best_iso = iso.iter().copied().fold(0.0, f64::max);
        assert!(
            (iso[0] - best_iso).abs() < 1e-9,
            "impl.1 must be isolation-best"
        );
        let best_high = high.iter().copied().fold(0.0, f64::max);
        assert!(high[0] < best_high, "impl.1 must lose under high pressure");
        // The paper reports up to ~7x degradation for impl.1.
        let degradation = iso[0] / high[0];
        assert!(degradation > 2.0, "impl.1 degraded only {degradation:.2}x");
        // The envelope dominates every version at every level.
        for (_, row) in &fig.panel_b {
            let envelope = row[row.len() - 1];
            for v in &row[..row.len() - 1] {
                assert!(envelope >= v - 1e-9);
            }
        }
    }
}
