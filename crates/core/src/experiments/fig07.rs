//! Figure 7: how many code versions a layer needs. (a) performance loss of
//! retaining 1-5 versions against the all-versions oracle across
//! interference levels; (b) the distribution of version counts required to
//! stay within a given loss budget.
//!
//! This is the paper's §3.3 *motivation* study, which predates the
//! single-pass compiler: the "ten versions" per layer are the per-level
//! optima found by the multi-pass extended auto-scheduler (one search per
//! interference level), and retention keeps a nested subset of them. The
//! single-pass approximation of Algorithm 1 is evaluated separately
//! (Fig. 9 and Fig. 14c).

use veltair_compiler::{search, CompilerOptions, Sample};
use veltair_sim::{execute, Interference};
use veltair_tensor::GemmView;

use super::ExpContext;

/// Cores used for all measurements.
const CORES: u32 = 16;

/// Interference levels probed (the paper uses ten).
const LEVELS: usize = 10;

/// Figure 7 data.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig07 {
    /// Per version budget k (1..=5): [(level, mean loss fraction)].
    pub loss_curves: Vec<Vec<(f64, f64)>>,
    /// Per loss budget: (budget, fraction of operators fine with k
    /// versions, cumulative for k = 1..=5).
    pub version_cdf: Vec<(f64, [f64; 5])>,
}

/// Latency matrix of the per-level optimal versions: `optima[v][li]` is
/// version `v`'s latency at level `li`, where version `v` is the
/// population's best implementation at level `v` (the paper's "ten
/// versions" from one auto-scheduler pass per interference level).
fn per_level_optima(
    population: &[Sample],
    levels: &[f64],
    machine: &veltair_sim::MachineConfig,
) -> Vec<Vec<f64>> {
    let lat = |s: &Sample, lvl: f64| {
        execute(&s.profile, CORES, Interference::level(lvl), machine).latency_s
    };
    levels
        .iter()
        .map(|&opt_level| {
            let best = population
                .iter()
                .min_by(|a, b| lat(a, opt_level).total_cmp(&lat(b, opt_level)))
                .expect("population is never empty");
            levels.iter().map(|&l| lat(best, l)).collect()
        })
        .collect()
}

/// Greedy nested retention: starting from the isolation-optimal version
/// (TVM's default choice, the paper's "Version Num=1"), repeatedly add the
/// version that most reduces the summed loss across levels. Returns, for
/// k = 1..=5, the loss-per-level of the best nested k-subset.
fn retention_losses(optima: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n_levels = optima[0].len();
    let oracle: Vec<f64> = (0..n_levels)
        .map(|li| optima.iter().map(|v| v[li]).fold(f64::INFINITY, f64::min))
        .collect();
    let env_loss = |kept: &[usize]| -> Vec<f64> {
        (0..n_levels)
            .map(|li| {
                let env = kept
                    .iter()
                    .map(|&v| optima[v][li])
                    .fold(f64::INFINITY, f64::min);
                (env / oracle[li] - 1.0).max(0.0)
            })
            .collect()
    };

    let mut kept: Vec<usize> = vec![0];
    let mut losses = vec![env_loss(&kept)];
    for _ in 1..5usize {
        let candidate = (0..optima.len())
            .filter(|v| !kept.contains(v))
            .min_by(|&a, &b| {
                let with = |v: usize| {
                    let mut k = kept.clone();
                    k.push(v);
                    env_loss(&k).iter().sum::<f64>()
                };
                with(a).total_cmp(&with(b))
            });
        match candidate {
            Some(v) => kept.push(v),
            None => break,
        }
        losses.push(env_loss(&kept));
    }
    while losses.len() < 5 {
        losses.push(losses.last().expect("at least one subset").clone());
    }
    losses
}

/// Runs the Figure 7 study over all ResNet-50 compute layers.
#[must_use]
pub fn run(ctx: &ExpContext) -> Fig07 {
    let spec = veltair_models::resnet50();
    let units = spec.graph.fused_units();
    let opts = CompilerOptions {
        search_iterations: 256,
        ..CompilerOptions::fast()
    };
    let machine = &ctx.machine;

    let levels: Vec<f64> = (0..LEVELS)
        .map(|i| i as f64 / (LEVELS - 1) as f64)
        .collect();

    // Per unit: the per-level optima and the nested retention losses.
    let mut per_unit_losses: Vec<Vec<Vec<f64>>> = Vec::new(); // [unit][k][level]
    for (i, unit) in units.iter().enumerate() {
        let Some(g) = GemmView::of(&unit.base) else {
            continue;
        };
        let population = search(unit, &g, machine, &opts, i as u64);
        let optima = per_level_optima(&population, &levels, machine);
        per_unit_losses.push(retention_losses(&optima));
    }

    let n_units = per_unit_losses.len() as f64;
    let loss_curves: Vec<Vec<(f64, f64)>> = (0..5)
        .map(|k| {
            levels
                .iter()
                .enumerate()
                .map(|(li, &l)| {
                    let mean = per_unit_losses.iter().map(|u| u[k][li]).sum::<f64>() / n_units;
                    (l, mean)
                })
                .collect()
        })
        .collect();

    // (b) For each loss budget, the fraction of operators whose worst-case
    // loss with k versions stays under budget.
    let budgets = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7];
    let version_cdf = budgets
        .iter()
        .map(|&b| {
            let mut fracs = [0.0f64; 5];
            for (k, frac) in fracs.iter_mut().enumerate() {
                let ok = per_unit_losses
                    .iter()
                    .filter(|u| u[k].iter().copied().fold(0.0, f64::max) <= b)
                    .count();
                *frac = ok as f64 / n_units;
            }
            (b, fracs)
        })
        .collect();

    Fig07 {
        loss_curves,
        version_cdf,
    }
}

impl std::fmt::Display for Fig07 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Figure 7a: mean performance loss vs interference level")?;
        for (k, curve) in self.loss_curves.iter().enumerate() {
            write!(f, "  {} version(s)", k + 1)?;
            for (l, loss) in curve {
                write!(f, " {:>3.0}%:{:>5.1}%", l * 100.0, loss * 100.0)?;
            }
            writeln!(f)?;
        }
        writeln!(
            f,
            "Figure 7b: operators within loss budget (cumulative by version count)"
        )?;
        for (b, fracs) in &self.version_cdf {
            write!(f, "  loss<={:>3.0}%", b * 100.0)?;
            for (k, fr) in fracs.iter().enumerate() {
                write!(f, "  {}v:{:>5.1}%", k + 1, fr * 100.0)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_versions_never_lose_more() {
        let ctx = ExpContext::new();
        let fig = run(&ctx);
        // At every level, the mean loss is non-increasing in the version
        // budget, and 5 versions keep the loss within ~10 % (paper §3.3).
        for li in 0..LEVELS {
            for k in 1..5 {
                assert!(
                    fig.loss_curves[k][li].1 <= fig.loss_curves[k - 1][li].1 + 1e-9,
                    "loss rose from {} to {} versions",
                    k,
                    k + 1
                );
            }
        }
        let worst_5v = fig.loss_curves[4]
            .iter()
            .map(|(_, l)| *l)
            .fold(0.0, f64::max);
        assert!(worst_5v < 0.15, "5-version mean loss {worst_5v}");
        // One version loses increasingly much as interference rises.
        let one = &fig.loss_curves[0];
        assert!(one.last().unwrap().1 > one.first().unwrap().1);
    }

    #[test]
    fn version_cdf_is_monotone() {
        let ctx = ExpContext::new();
        let fig = run(&ctx);
        for (_, fracs) in &fig.version_cdf {
            for k in 1..5 {
                assert!(fracs[k] >= fracs[k - 1] - 1e-9);
            }
        }
        // With a 10 % budget, most operators need at most 3 versions
        // (paper: >80 %).
        let (_, at10) = fig.version_cdf[0];
        assert!(
            at10[2] > 0.5,
            "only {:.0}% of ops fine with 3 versions",
            at10[2] * 100.0
        );
    }
}
