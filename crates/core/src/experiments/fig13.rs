//! Figure 13: average query latency at each model's max-QPS point,
//! normalized to the isolated solo-run latency.

use super::fig12::{self, Fig12};
use super::ExpContext;

/// Figure 13 data.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig13 {
    /// (model, isolated ms, per-policy normalized latency in Fig. 12's
    /// policy order AS/AC/FULL).
    pub rows: Vec<(String, f64, [f64; 3])>,
    /// Average normalized latency per policy.
    pub averages: [f64; 3],
}

/// Runs Figure 13, reusing the Figure 12 sweep when provided.
#[must_use]
pub fn run(ctx: &ExpContext, fig12: Option<&Fig12>) -> Fig13 {
    let owned;
    let data = match fig12 {
        Some(d) => d,
        None => {
            owned = fig12::run(ctx);
            &owned
        }
    };
    let models = [
        "efficientnet_b0",
        "mobilenet_v2",
        "tiny_yolo_v2",
        "resnet50",
        "googlenet",
        "ssd_resnet34",
        "bert_large",
    ];
    let policies = ["Veltair-AS", "Veltair-AC", "Veltair-FULL"];
    let mut rows = Vec::new();
    for name in models {
        let compiled = ctx.model(name);
        // The shortest latency the model can achieve on this machine.
        let isolated_s = compiled.flat_latency_s(ctx.machine.cores, 0.0, &ctx.machine);
        let col = data
            .columns
            .iter()
            .find(|c| c.label == name)
            .expect("column exists");
        let mut norm = [0.0f64; 3];
        for (i, p) in policies.iter().enumerate() {
            norm[i] = col.latency_s[*p] / isolated_s;
        }
        rows.push((name.to_string(), isolated_s * 1e3, norm));
    }
    let mut averages = [0.0f64; 3];
    for (i, avg) in averages.iter_mut().enumerate() {
        *avg = rows.iter().map(|r| r.2[i]).sum::<f64>() / rows.len() as f64;
    }
    Fig13 { rows, averages }
}

impl std::fmt::Display for Fig13 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 13: latency at max QPS, normalized to isolated execution"
        )?;
        writeln!(
            f,
            "  {:<16} {:>9} {:>9} {:>9} {:>9}",
            "model", "iso(ms)", "AS", "AC", "FULL"
        )?;
        for (m, iso, n) in &self.rows {
            writeln!(
                f,
                "  {m:<16} {iso:>9.2} {:>9.2} {:>9.2} {:>9.2}",
                n[0], n[1], n[2]
            )?;
        }
        writeln!(
            f,
            "  {:<16} {:>9} {:>9.2} {:>9.2} {:>9.2}",
            "average", "", self.averages[0], self.averages[1], self.averages[2]
        )
    }
}
