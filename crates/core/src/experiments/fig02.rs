//! Figure 2: auto-scheduled (TVM-class) code vs the vendor library
//! (MKL-DNN-class) on the four vision models.

use veltair_compiler::vendor_profile;
use veltair_sim::{execute, Interference};

use super::ExpContext;

/// Cores used for the single-model comparison.
const CORES: u32 = 16;

/// Figure 2 data: per model, end-to-end solo latency (ms) under both
/// compilation paths.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig02 {
    /// (model, tvm ms, vendor ms).
    pub rows: Vec<(String, f64, f64)>,
}

/// Runs the Figure 2 comparison.
#[must_use]
pub fn run(ctx: &ExpContext) -> Fig02 {
    let models = ["resnet50", "googlenet", "mobilenet_v2", "efficientnet_b0"];
    let mut rows = Vec::new();
    for name in models {
        let compiled = ctx.model(name);
        let tvm_ms = compiled.flat_latency_s(CORES, 0.0, &ctx.machine) * 1e3;

        let spec = veltair_models::by_name(name).expect("zoo model");
        let vendor_ms: f64 = spec
            .graph
            .fused_units()
            .iter()
            .map(|u| {
                execute(&vendor_profile(u), CORES, Interference::NONE, &ctx.machine).latency_s
                    + ctx.machine.dispatch_overhead_s
            })
            .sum::<f64>()
            * 1e3;
        rows.push((name.to_string(), tvm_ms, vendor_ms));
    }
    Fig02 { rows }
}

impl std::fmt::Display for Fig02 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 2: TVM-class auto-scheduling vs vendor library (ms, {CORES} cores)"
        )?;
        for (m, tvm, vendor) in &self.rows {
            writeln!(
                f,
                "  {m:<16} tvm {tvm:>7.2}  vendor {vendor:>7.2}  speedup {:.2}x",
                vendor / tvm
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tvm_generally_outperforms_vendor() {
        let ctx = ExpContext::new();
        let fig = run(&ctx);
        assert_eq!(fig.rows.len(), 4);
        let wins = fig
            .rows
            .iter()
            .filter(|(_, tvm, vendor)| tvm < vendor)
            .count();
        assert!(wins >= 3, "tvm won only {wins}/4 models");
        // And never catastrophically loses.
        for (m, tvm, vendor) in &fig.rows {
            assert!(tvm < &(1.2 * vendor), "{m}: tvm {tvm} vendor {vendor}");
        }
    }
}
