//! Figure 4: (a) speedup of representative ResNet-50 conv layers with
//! growing core counts; (b) the core-allocation-over-time profile of one
//! ResNet-50 inference under each scheduling granularity.

use veltair_compiler::selector::select_at_level;
use veltair_sched::layer_block::form_blocks;
use veltair_sim::{execute, Interference};

use super::ExpContext;

/// Figure 4 data.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig04 {
    /// (layer label, [(cores, speedup vs 8 cores)]) — panel (a).
    pub speedup: Vec<(String, Vec<(u32, f64)>)>,
    /// (granularity label, [(time ms, allocated cores)]) — panel (b) step
    /// series over one inference.
    pub allocation: Vec<(String, Vec<(f64, u32)>)>,
}

/// Runs the Figure 4 experiments.
#[must_use]
pub fn run(ctx: &ExpContext) -> Fig04 {
    let model = ctx.model("resnet50");
    let machine = &ctx.machine;

    // (a) The paper's four exemplar layers: 56^2 1x1, the 224^2 7x7 stem,
    // a 7^2 1x1, and a 56^2 3x3.
    let picks = [
        ("conv1", "224x224 C(3,64) K7"),
        ("res2a_2a", "56x56 C(64,64) K1"),
        ("res2a_2b", "56x56 C(64,64) K3"),
        ("res5a_2c", "7x7 C(512,2048) K1"),
    ];
    let mut speedup = Vec::new();
    for (name, label) in picks {
        let layer = model
            .layers
            .iter()
            .find(|l| l.name.starts_with(name))
            .unwrap_or_else(|| panic!("layer {name} missing"));
        let v = layer.version_for_level(0.0);
        let profile = layer.versions[v].profile;
        let base = execute(&profile, 8, Interference::NONE, machine).latency_s;
        let series: Vec<(u32, f64)> = (1..=7)
            .map(|i| {
                let p = 8 * i;
                let l = execute(&profile, p, Interference::NONE, machine).latency_s;
                (p, base / l)
            })
            .collect();
        speedup.push((label.to_string(), series));
    }

    // (b) Allocation-over-time profiles for one query.
    let mut allocation = Vec::new();
    // Model-wise: a flat allocation for the whole inference.
    let flat = model.model_core_requirement(0.0);
    let total_ms = model.flat_latency_s(flat, 0.0, machine) * 1e3;
    allocation.push(("Model".to_string(), vec![(0.0, flat), (total_ms, flat)]));
    // Layer-wise: each unit at its own minimum.
    let versions = select_at_level(&model, 0.0, false);
    let mut t = 0.0;
    let mut layer_series = Vec::new();
    for (i, layer) in model.layers.iter().enumerate() {
        let req = layer.core_requirement(versions[i], 0.0);
        layer_series.push((t, req));
        t += layer.latency_s(versions[i], req, Interference::NONE, machine) * 1e3;
    }
    layer_series.push((t, 0));
    allocation.push(("Layer".to_string(), layer_series));
    // Fixed blocks of 6 and 11: emulate with the block planner by slicing.
    for k in [6usize, 11] {
        let mut series = Vec::new();
        let mut t = 0.0;
        let n = model.layers.len();
        let mut begin = 0;
        while begin < n {
            let end = (begin + k).min(n);
            let cores = veltair_sched::block_core_requirement(
                &model,
                begin,
                end,
                &versions,
                Interference::NONE,
                machine,
            );
            series.push((t, cores));
            for (layer, &version) in model.layers[begin..end].iter().zip(&versions[begin..end]) {
                t += layer.latency_s(version, cores, Interference::NONE, machine) * 1e3;
            }
            begin = end;
        }
        series.push((t, 0));
        allocation.push((format!("Block({k})"), series));
    }
    // Dynamic blocks at a moderate threshold, for reference.
    let blocks = form_blocks(&model, 0.0, false, 8, machine);
    let mut series = Vec::new();
    let mut t = 0.0;
    for b in &blocks {
        series.push((t, b.cores));
        for i in b.start..b.end {
            t += model.layers[i].latency_s(
                b.versions[i - b.start],
                b.cores,
                Interference::NONE,
                machine,
            ) * 1e3;
        }
    }
    series.push((t, 0));
    allocation.push(("Block(Dyn)".to_string(), series));

    Fig04 {
        speedup,
        allocation,
    }
}

impl std::fmt::Display for Fig04 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Figure 4a: speedup vs cores (relative to 8 cores)")?;
        for (label, series) in &self.speedup {
            write!(f, "  {label:<22}")?;
            for (p, s) in series {
                write!(f, " {p:>2}c:{s:>5.2}")?;
            }
            writeln!(f)?;
        }
        writeln!(f, "Figure 4b: core allocation over one ResNet-50 inference")?;
        for (label, series) in &self.allocation {
            let peak = series.iter().map(|&(_, c)| c).max().unwrap_or(0);
            let end = series.last().map_or(0.0, |&(t, _)| t);
            writeln!(
                f,
                "  {label:<12} steps {:>3}  peak {peak:>2} cores  span {end:>7.2} ms",
                series.len()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig04_shapes_match_paper() {
        let ctx = ExpContext::new();
        let fig = run(&ctx);
        // (a) Every layer speeds up monotonically but they saturate at
        // different points: the small 7x7 layer scales worst.
        for (label, series) in &fig.speedup {
            assert!(
                series.windows(2).all(|w| w[1].1 >= w[0].1 - 1e-9),
                "{label} speedup not monotone"
            );
        }
        let last = |label: &str| {
            fig.speedup
                .iter()
                .find(|(l, _)| l.contains(label))
                .map(|(_, s)| s.last().unwrap().1)
                .unwrap()
        };
        assert!(
            last("7x7") < last("56x56 C(64,64) K3"),
            "small layer should scale worst"
        );
        // (b) Layer-wise has more allocation steps than blocks, which have
        // more than model-wise; model-wise holds the peak flat.
        let steps = |label: &str| {
            fig.allocation
                .iter()
                .find(|(l, _)| l == label)
                .map(|(_, s)| s.len())
                .unwrap()
        };
        assert!(steps("Layer") > steps("Block(6)"));
        assert!(steps("Block(6)") > steps("Model"));
    }
}
