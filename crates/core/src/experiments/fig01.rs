//! Figure 1: motivation. (a) Inference latency of the MLPerf vision models
//! against core count, with the light/heavy QoS lines. (b) Performance
//! slowdown when co-locating multiple tasks naively.

use veltair_compiler::CompiledModel;
use veltair_sim::{execute, Interference, MachineConfig, PressureDemand};

use super::ExpContext;

/// Figure 1 data.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig01 {
    /// (model, [(cores, latency ms)]) — panel (a).
    pub latency_vs_cores: Vec<(String, Vec<(u32, f64)>)>,
    /// Light QoS line (ms).
    pub qos_light_ms: f64,
    /// Medium ("heavy" vision) QoS line (ms).
    pub qos_medium_ms: f64,
    /// (model, [(co-located tasks, slowdown x)]) — panel (b).
    pub slowdown: Vec<(String, Vec<(usize, f64)>)>,
    /// Average slowdown series over the three probed models.
    pub slowdown_avg: Vec<(usize, f64)>,
}

/// Runs the Figure 1 experiments.
#[must_use]
pub fn run(ctx: &ExpContext) -> Fig01 {
    // (a) Solo latency as the flat core allocation grows.
    let vision = ["resnet50", "googlenet", "efficientnet_b0", "mobilenet_v2"];
    let mut latency_vs_cores = Vec::new();
    for name in vision {
        let m = ctx.model(name);
        let series: Vec<(u32, f64)> = [8u32, 16, 32, 64]
            .iter()
            .map(|&p| (p, m.flat_latency_s(p, 0.0, &ctx.machine) * 1e3))
            .collect();
        latency_vs_cores.push((name.to_string(), series));
    }

    // (b) Slowdown under naive co-location (the "simply dump all tasks"
    // setup of §2.1): every task keeps a fixed 16-core team — the machine
    // has cores for all of them — so the entire degradation comes from the
    // shared L3 and memory bandwidth. Background tasks cycle through the
    // paper's co-location mix (ResNet-50 / GoogLeNet / SSD).
    let probes = ["resnet50", "googlenet", "bert_large"];
    let pool = ["resnet50", "ssd_resnet34", "googlenet"];
    let mut slowdown = Vec::new();
    for name in probes {
        let probe = ctx.model(name);
        let solo = contended_latency_s(&probe, NAIVE_CORES, Interference::NONE, &ctx.machine);
        let mut series = Vec::new();
        for k in 1..=4usize {
            let demands: Vec<PressureDemand> = (0..k - 1)
                .map(|i| steady_demand(&ctx.model(pool[i % pool.len()]), NAIVE_CORES, &ctx.machine))
                .collect();
            let interference = Interference::from_corunners(demands.iter(), &ctx.machine);
            let contended = contended_latency_s(&probe, NAIVE_CORES, interference, &ctx.machine);
            series.push((k, contended / solo));
        }
        slowdown.push((name.to_string(), series));
    }
    let slowdown_avg: Vec<(usize, f64)> = (0..4)
        .map(|i| {
            let k = i + 1;
            let mean = slowdown.iter().map(|(_, s)| s[i].1).sum::<f64>() / slowdown.len() as f64;
            (k, mean)
        })
        .collect();

    Fig01 {
        latency_vs_cores,
        qos_light_ms: 10.0,
        qos_medium_ms: 15.0,
        slowdown,
        slowdown_avg,
    }
}

/// Thread-team size every naively co-located task keeps (the machine fits
/// four 16-core teams without core contention, isolating the shared-cache
/// and bandwidth effects the paper's Fig. 1b demonstrates).
const NAIVE_CORES: u32 = 16;

/// End-to-end latency of a model on a fixed allocation under a given
/// ambient interference (each layer at its solo-best version).
fn contended_latency_s(
    model: &CompiledModel,
    cores: u32,
    interference: Interference,
    machine: &MachineConfig,
) -> f64 {
    model
        .layers
        .iter()
        .map(|l| l.latency_s(l.version_for_level(0.0), cores, interference, machine))
        .sum()
}

/// Time-weighted average pressure a model exerts while running on a fixed
/// allocation: each layer's demand weighted by its share of the runtime.
fn steady_demand(model: &CompiledModel, cores: u32, machine: &MachineConfig) -> PressureDemand {
    let mut total_t = 0.0;
    let mut cache = 0.0;
    let mut bw = 0.0;
    for l in &model.layers {
        let e = execute(
            &l.versions[l.version_for_level(0.0)].profile,
            cores,
            Interference::NONE,
            machine,
        );
        total_t += e.latency_s;
        cache += e.demand.cache_bytes * e.latency_s;
        bw += e.demand.bw_bytes_per_s * e.latency_s;
    }
    PressureDemand {
        cache_bytes: cache / total_t.max(1e-12),
        bw_bytes_per_s: bw / total_t.max(1e-12),
    }
}

impl std::fmt::Display for Fig01 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Figure 1a: inference latency (ms) vs core count")?;
        writeln!(
            f,
            "  QoS lines: light {} ms, medium {} ms",
            self.qos_light_ms, self.qos_medium_ms
        )?;
        for (m, series) in &self.latency_vs_cores {
            write!(f, "  {m:<16}")?;
            for (p, l) in series {
                write!(f, " {p:>2} cores: {l:>6.2}")?;
            }
            writeln!(f)?;
        }
        writeln!(f, "Figure 1b: slowdown vs co-located task count")?;
        for (m, series) in &self.slowdown {
            write!(f, "  {m:<16}")?;
            for (k, s) in series {
                write!(f, " x{k}: {s:>5.2}")?;
            }
            writeln!(f)?;
        }
        write!(f, "  {:<16}", "average")?;
        for (k, s) in &self.slowdown_avg {
            write!(f, " x{k}: {s:>5.2}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig01_shapes_match_paper() {
        let ctx = ExpContext::new();
        let fig = run(&ctx);
        // (a) Latency falls (weakly) with more cores, and every vision
        // model meets its QoS with 16 cores (paper: "a few cores").
        for (m, series) in &fig.latency_vs_cores {
            assert!(
                series.windows(2).all(|w| w[1].1 <= w[0].1 * 1.001),
                "{m} not monotone"
            );
            assert!(series[1].1 < 15.0, "{m} at 16 cores: {} ms", series[1].1);
        }
        // (b) Slowdown grows with co-location, reaching the paper's
        // 1.3-2x territory at 4 tasks.
        for (m, series) in &fig.slowdown {
            assert!((series[0].1 - 1.0).abs() < 1e-9);
            let last = series.last().unwrap().1;
            assert!(last > 1.05, "{m} shows no slowdown ({last})");
            assert!(last < 4.0, "{m} slowdown implausible ({last})");
        }
    }
}
