//! Figure 10: (a) threshold-based layer-block formation on ResNet-50;
//! (b) average and maximum CPU usage per scheduling granularity when
//! co-locating two ResNet-50 streams.

use veltair_compiler::selector::select_at_level;
use veltair_sched::layer_block::form_blocks;
use veltair_sched::{Policy, WorkloadSpec};

use super::ExpContext;

/// Figure 10 data.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig10 {
    /// Per-layer core requirement (panel a, red area).
    pub layer_requirements: Vec<u32>,
    /// Model-granularity flat requirement (panel a, black line).
    pub model_cores: u32,
    /// The threshold used in the walk-through.
    pub threshold: u32,
    /// Formed blocks as (start, end, cores) (panel a, arrows + yellow).
    pub blocks: Vec<(usize, usize, u32)>,
    /// (granularity, avg cores, max cores) under 2-way co-location
    /// (panel b).
    pub usage: Vec<(String, f64, u32)>,
}

/// Runs the Figure 10 experiments.
#[must_use]
pub fn run(ctx: &ExpContext) -> Fig10 {
    let model = ctx.model("resnet50");
    let machine = &ctx.machine;

    let versions = select_at_level(&model, 0.0, false);
    let layer_requirements: Vec<u32> = model
        .layers
        .iter()
        .enumerate()
        .map(|(i, l)| l.core_requirement(versions[i], 0.0))
        .collect();
    let model_cores = model.model_core_requirement(0.0);
    let threshold = 6;
    let blocks: Vec<(usize, usize, u32)> = form_blocks(&model, 0.0, false, threshold, machine)
        .iter()
        .map(|b| (b.start, b.end, b.cores))
        .collect();

    // (b) Two concurrent ResNet-50 streams served at a moderate joint rate.
    let policies: Vec<(String, Policy)> = vec![
        ("Model".into(), Policy::ModelFcfs),
        ("Layer".into(), Policy::Planaria),
        ("LBs(6)".into(), Policy::FixedBlock(6)),
        ("LBs(11)".into(), Policy::FixedBlock(11)),
        ("LBs(Dyn)".into(), Policy::VeltairAs),
    ];
    let budget = ctx.query_budget().min(200);
    let mut usage = Vec::new();
    for (label, policy) in policies {
        let engine = ctx.engine(policy, &["resnet50"]);
        let report = engine.run(&WorkloadSpec::single("resnet50", 150.0, budget), 1);
        usage.push((label, report.avg_cores, report.peak_cores));
    }

    Fig10 {
        layer_requirements,
        model_cores,
        threshold,
        blocks,
        usage,
    }
}

impl std::fmt::Display for Fig10 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 10a: block formation (thres = {})",
            self.threshold
        )?;
        writeln!(
            f,
            "  model-granularity cores {}, layer peak {}, {} blocks",
            self.model_cores,
            self.layer_requirements.iter().max().unwrap(),
            self.blocks.len()
        )?;
        for (s, e, c) in &self.blocks {
            writeln!(f, "    block [{s:>2}..{e:>2}) -> {c:>2} cores")?;
        }
        writeln!(f, "Figure 10b: CPU usage under 2-way ResNet-50 co-location")?;
        for (label, avg, max) in &self.usage {
            writeln!(f, "  {label:<8} avg {avg:>5.1}  max {max:>2}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_formation_flattens_peaks() {
        let ctx = ExpContext::new();
        let fig = run(&ctx);
        let layer_peak = *fig.layer_requirements.iter().max().unwrap();
        let block_peak = fig.blocks.iter().map(|b| b.2).max().unwrap();
        assert!(block_peak <= layer_peak);
        // Blocks cover the whole model contiguously.
        assert_eq!(fig.blocks.first().unwrap().0, 0);
        assert_eq!(fig.blocks.last().unwrap().1, fig.layer_requirements.len());
    }

    #[test]
    fn dynamic_blocks_balance_avg_and_peak() {
        let ctx = ExpContext::new();
        let fig = run(&ctx);
        let get = |label: &str| fig.usage.iter().find(|(l, ..)| l == label).unwrap().clone();
        let (_, _, model_max) = get("Model");
        let (_, _, dyn_max) = get("LBs(Dyn)");
        // Fig. 10b: dynamic blocks keep the maximum usage no worse than
        // the model granularity's.
        assert!(dyn_max <= model_max.max(64));
    }
}
