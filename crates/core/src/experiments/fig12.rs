//! Figure 12: the headline result — maximum QPS with 95 % of queries
//! QoS-satisfied, for Planaria / PREMA / VELTAIR-AS / -AC / -FULL across
//! light, medium, heavy, and mixed workloads, normalized to Planaria.

use std::collections::BTreeMap;

use veltair_sched::{Policy, WorkloadSpec};

use super::ExpContext;
use crate::metrics::{max_qps_at_qos, QpsResult, QpsSearchConfig};

/// One workload column of the figure.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadResult {
    /// Column label (model or class name).
    pub label: String,
    /// Absolute max QPS per policy (Fig. 12 plots these normalized).
    pub qps: BTreeMap<String, f64>,
    /// Mean latency (seconds) at the max-QPS point, per policy (Fig. 13).
    pub latency_s: BTreeMap<String, f64>,
}

/// Figure 12 data.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig12 {
    /// All workload columns in plot order.
    pub columns: Vec<WorkloadResult>,
    /// Policies in plot order.
    pub policies: Vec<String>,
}

/// The workload columns of the figure: the seven single-model streams,
/// the three class aggregates, and the full mix.
#[must_use]
pub fn workload_columns() -> Vec<(String, Vec<(String, f64)>)> {
    let spec = |n: &str| veltair_models::by_name(n).expect("zoo model");
    let single = |n: &str| (n.to_string(), vec![(n.to_string(), 1.0)]);
    let class_mix = |label: &str, names: &[&str]| {
        let streams = names
            .iter()
            .map(|n| ((*n).to_string(), 1.0 / spec(n).qos_ms))
            .collect::<Vec<_>>();
        (label.to_string(), streams)
    };
    vec![
        single("efficientnet_b0"),
        single("mobilenet_v2"),
        single("tiny_yolo_v2"),
        class_mix(
            "Light",
            &["efficientnet_b0", "mobilenet_v2", "tiny_yolo_v2"],
        ),
        single("resnet50"),
        single("googlenet"),
        class_mix("Medium", &["resnet50", "googlenet"]),
        single("ssd_resnet34"),
        single("bert_large"),
        class_mix("Heavy", &["ssd_resnet34", "bert_large"]),
        class_mix(
            "Mix",
            &[
                "efficientnet_b0",
                "mobilenet_v2",
                "tiny_yolo_v2",
                "resnet50",
                "googlenet",
                "ssd_resnet34",
                "bert_large",
            ],
        ),
    ]
}

/// Runs the full Figure 12 sweep. Columns are searched in parallel; each
/// search bisects the arrival rate for each policy.
#[must_use]
pub fn run(ctx: &ExpContext) -> Fig12 {
    let policies = Policy::figure12_set();
    let columns_spec = workload_columns();
    // Pre-compile everything once (the cache is shared).
    for m in veltair_models::all_models() {
        let _ = ctx.model(&m.graph.name);
    }
    let cfg = QpsSearchConfig::figure12();

    let mut columns: Vec<Option<WorkloadResult>> = Vec::new();
    columns.resize_with(columns_spec.len(), || None);
    std::thread::scope(|scope| {
        for (slot, (label, streams)) in columns.iter_mut().zip(&columns_spec) {
            let cfg = cfg.clone();
            scope.spawn(move || {
                let names: Vec<&str> = streams.iter().map(|(n, _)| n.as_str()).collect();
                let stream_refs: Vec<(&str, f64)> =
                    streams.iter().map(|(n, r)| (n.as_str(), *r)).collect();
                let workload = WorkloadSpec::mix(&stream_refs, cfg.queries);
                let mut qps = BTreeMap::new();
                let mut latency = BTreeMap::new();
                for policy in policies {
                    let engine = ctx.engine(policy, &names);
                    let QpsResult {
                        qps: q,
                        avg_latency_s,
                        ..
                    } = max_qps_at_qos(&engine, &workload, &cfg);
                    qps.insert(policy.name(), q);
                    latency.insert(policy.name(), avg_latency_s);
                }
                *slot = Some(WorkloadResult {
                    label: label.clone(),
                    qps,
                    latency_s: latency,
                });
            });
        }
    });

    Fig12 {
        columns: columns
            .into_iter()
            .map(|c| c.expect("all columns filled"))
            .collect(),
        policies: policies.iter().map(Policy::name).collect(),
    }
}

impl Fig12 {
    /// QPS of `policy` on `column`, normalized to Planaria.
    #[must_use]
    pub fn normalized(&self, column: &str, policy: &str) -> f64 {
        let col = self
            .columns
            .iter()
            .find(|c| c.label == column)
            .expect("column exists");
        col.qps[policy] / col.qps["Planaria"]
    }

    /// Geometric-mean improvement of one policy over Planaria across a set
    /// of columns.
    #[must_use]
    pub fn mean_improvement(&self, policy: &str, columns: &[&str]) -> f64 {
        let prod: f64 = columns.iter().map(|c| self.normalized(c, policy)).product();
        prod.powf(1.0 / columns.len() as f64) - 1.0
    }
}

impl std::fmt::Display for Fig12 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Figure 12: normalized max QPS at 90% QoS satisfaction (Planaria = 1.00; paper uses 95%, see EXPERIMENTS.md)")?;
        write!(f, "  {:<16}", "workload")?;
        for p in &self.policies {
            write!(f, " {p:>13}")?;
        }
        writeln!(f)?;
        for col in &self.columns {
            write!(f, "  {:<16}", col.label)?;
            let base = col.qps["Planaria"];
            for p in &self.policies {
                write!(f, " {:>9.2} ({:>4.0})", col.qps[p] / base, col.qps[p])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServingEngine;

    /// A trimmed, fast variant of the Fig. 12 ordering check: FULL must
    /// beat Planaria and PREMA on a light single-model workload.
    #[test]
    fn full_beats_baselines_on_light_workload() {
        let ctx = ExpContext::new();
        let cfg = QpsSearchConfig {
            queries: 120,
            seed: 1,
            iterations: 5,
            satisfaction_target: 0.95,
        };
        let workload = WorkloadSpec::single("mobilenet_v2", 10.0, cfg.queries);
        let q = |policy| {
            let engine: ServingEngine = ctx.engine(policy, &["mobilenet_v2"]);
            max_qps_at_qos(&engine, &workload, &cfg).qps
        };
        let planaria = q(Policy::Planaria);
        let prema = q(Policy::Prema);
        let full = q(Policy::VeltairFull);
        assert!(full > prema, "FULL {full} <= PREMA {prema}");
        assert!(
            full >= planaria * 0.95,
            "FULL {full} far below Planaria {planaria}"
        );
    }
}
