//! Tables 1 and 2 of the paper.

use super::ExpContext;

/// Table 1: the design space of prior multi-tenant DNN serving systems —
/// static reference data, printed for completeness.
#[must_use]
pub fn table1() -> String {
    let rows = [
        ("PREMA", "Temporal", "Static (Model)", "Static"),
        ("AI-MT", "Temporal", "Static (Layer)", "Static"),
        ("Planaria", "Spatial", "Static (Model)", "Static"),
        ("Parties", "Spatial", "Static (Model/Layer)", "Static"),
        ("Protean", "Spatial", "Static (Model/Layer)", "Adaptive"),
        (
            "VELTAIR (ours)",
            "Spatial",
            "Adaptive (Layer Block)",
            "Adaptive",
        ),
    ];
    let mut s = String::from("Table 1: optimization strategies in VELTAIR and prior works\n");
    s.push_str(&format!(
        "  {:<16} {:<10} {:<24} {:<10}\n",
        "Work", "Multiplex", "Granularity", "Compilation"
    ));
    for (w, m, g, c) in rows {
        s.push_str(&format!("  {w:<16} {m:<10} {g:<24} {c:<10}\n"));
    }
    s
}

/// One Table 2 row, extended with the compiled statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Model name.
    pub name: String,
    /// Workload class.
    pub class: String,
    /// QoS target (ms).
    pub qos_ms: f64,
    /// Total GFLOPs.
    pub gflops: f64,
    /// Scheduling units after fusion.
    pub units: usize,
    /// Total retained code versions.
    pub versions: usize,
    /// Model-granularity core requirement in isolation.
    pub model_cores: u32,
}

/// Builds Table 2 (evaluated models) with compiled statistics appended.
#[must_use]
pub fn table2(ctx: &ExpContext) -> Vec<Table2Row> {
    veltair_models::all_models()
        .into_iter()
        .map(|spec| {
            let compiled = ctx.model(&spec.graph.name);
            Table2Row {
                name: spec.graph.name.clone(),
                class: spec.class.to_string(),
                qos_ms: spec.qos_ms,
                gflops: spec.graph.total_flops() / 1e9,
                units: compiled.layers.len(),
                versions: compiled.total_versions(),
                model_cores: compiled.model_core_requirement(0.0),
            }
        })
        .collect()
}

/// Formats Table 2 rows.
#[must_use]
pub fn format_table2(rows: &[Table2Row]) -> String {
    let mut s = String::from("Table 2: evaluated multi-tenant DL models\n");
    s.push_str(&format!(
        "  {:<16} {:<7} {:>8} {:>9} {:>6} {:>9} {:>11}\n",
        "Model", "Class", "QoS(ms)", "GFLOPs", "Units", "Versions", "ModelCores"
    ));
    for r in rows {
        s.push_str(&format!(
            "  {:<16} {:<7} {:>8.0} {:>9.2} {:>6} {:>9} {:>11}\n",
            r.name, r.class, r.qos_ms, r.gflops, r.units, r.versions, r.model_cores
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_all_prior_work() {
        let t = table1();
        for name in [
            "PREMA", "AI-MT", "Planaria", "Parties", "Protean", "VELTAIR",
        ] {
            assert!(t.contains(name), "missing {name}");
        }
    }

    #[test]
    fn table2_matches_the_zoo() {
        let ctx = ExpContext::new();
        let rows = table2(&ctx);
        assert_eq!(rows.len(), 7);
        let bert = rows.iter().find(|r| r.name == "bert_large").unwrap();
        assert_eq!(bert.qos_ms, 130.0);
        assert_eq!(bert.class, "Heavy");
        assert!(bert.gflops > 100.0);
        let fmt = format_table2(&rows);
        assert!(fmt.contains("bert_large"));
    }
}
