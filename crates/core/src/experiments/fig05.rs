//! Figure 5: (a) scheduling conflict rate per granularity and arrival
//! rate; (b) the per-layer conflict (thread-team expansion) overhead.

use veltair_compiler::selector::select_at_level;
use veltair_sim::{execute, Interference};

use super::fig03::{self, Fig03};
use super::ExpContext;

/// Figure 5 data.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig05 {
    /// (policy, [(qps, conflict rate)]) — panel (a).
    pub conflict_rates: Vec<(String, Vec<(f64, f64)>)>,
    /// (policy, [(qps, conflicts per query)]) — panel (a)'s robust
    /// companion metric (comparable across dispatch granularities).
    pub conflicts_per_query: Vec<(String, Vec<(f64, f64)>)>,
    /// Per-layer conflict overhead in microseconds — panel (b).
    pub overhead_us: Vec<(String, f64)>,
    /// Mean of panel (b).
    pub mean_us: f64,
    /// Median of panel (b).
    pub median_us: f64,
}

/// Work fraction executed before the expansion arrives in the conflict
/// replay (a conflicted layer starts short and grows mid-flight).
const PRE_EXPANSION_FRAC: f64 = 0.3;

/// Runs the Figure 5 experiments. Reuses the Figure 3 sweep when given.
#[must_use]
pub fn run(ctx: &ExpContext, fig03: Option<&Fig03>) -> Fig05 {
    let owned;
    let sweep = match fig03 {
        Some(f) => f,
        None => {
            owned = fig03::run(ctx);
            &owned
        }
    };
    let conflict_rates = sweep
        .series
        .iter()
        .map(|(name, pts)| {
            (
                name.clone(),
                pts.iter().map(|p| (p.qps, p.conflict_rate)).collect(),
            )
        })
        .collect();
    let conflicts_per_query = sweep
        .series
        .iter()
        .map(|(name, pts)| {
            (
                name.clone(),
                pts.iter().map(|p| (p.qps, p.conflicts_per_query)).collect(),
            )
        })
        .collect();

    // (b) Replay each ResNet-50 layer through a conflicted dispatch:
    // granted half its requirement, expanded after PRE_EXPANSION_FRAC of
    // the work, paying the team-growth overhead.
    let model = ctx.model("resnet50");
    let machine = &ctx.machine;
    let versions = select_at_level(&model, 0.0, false);
    let mut overhead_us = Vec::new();
    for (i, layer) in model.layers.iter().enumerate() {
        let profile = layer.versions[versions[i]].profile;
        let req = layer.core_requirement(versions[i], 0.0).max(2);
        let short = (req / 2).max(1);
        let clean = execute(&profile, req, Interference::NONE, machine).latency_s;
        let slow = execute(&profile, short, Interference::NONE, machine).latency_s;
        let conflicted = PRE_EXPANSION_FRAC * slow
            + machine.expansion_overhead_s(req - short)
            + (1.0 - PRE_EXPANSION_FRAC) * clean;
        overhead_us.push((layer.name.clone(), (conflicted - clean) * 1e6));
    }
    let mut sorted: Vec<f64> = overhead_us.iter().map(|o| o.1).collect();
    sorted.sort_by(f64::total_cmp);
    let mean_us = sorted.iter().sum::<f64>() / sorted.len() as f64;
    let median_us = sorted[sorted.len() / 2];

    Fig05 {
        conflict_rates,
        conflicts_per_query,
        overhead_us,
        mean_us,
        median_us,
    }
}

impl std::fmt::Display for Fig05 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Figure 5a: scheduling conflict rate vs QPS")?;
        for (name, pts) in &self.conflict_rates {
            write!(f, "  {name:<10}")?;
            for (q, c) in pts {
                write!(f, " {q:>3.0}qps:{:>5.1}%", c * 100.0)?;
            }
            writeln!(f)?;
        }
        writeln!(
            f,
            "Figure 5b: per-layer conflict overhead over {} layers — mean {:.0} us, median {:.0} us",
            self.overhead_us.len(),
            self.mean_us,
            self.median_us
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_overhead_matches_paper_scale() {
        let ctx = ExpContext::new();
        let fig = run(&ctx, None);
        // Paper Fig. 5b: mean 220 us, median 100 us. Same order here.
        assert!(
            fig.mean_us > 30.0 && fig.mean_us < 1000.0,
            "mean overhead {} us",
            fig.mean_us
        );
        assert!(
            fig.median_us > 20.0 && fig.median_us < 500.0,
            "median overhead {} us",
            fig.median_us
        );
        assert!(
            fig.mean_us > fig.median_us,
            "overhead distribution should be right-skewed"
        );
    }

    #[test]
    fn layer_wise_conflicts_dominate_at_high_load() {
        let ctx = ExpContext::new();
        let fig = run(&ctx, None);
        let at_max = |name: &str| {
            fig.conflicts_per_query
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, pts)| pts.last().unwrap().1)
                .unwrap()
        };
        // Fig. 5a: a layer-wise query accumulates far more conflicts than
        // a model-wise query at the top of the sweep (one conflict
        // opportunity per layer vs one per query).
        assert!(
            at_max("Layer") >= 2.0 * at_max("Model"),
            "layer {} vs model {}",
            at_max("Layer"),
            at_max("Model")
        );
    }
}
