//! Figure 9: the parallelism/locality tradeoff and the three-step version
//! extraction (collect, QoS-filter, Pareto) on the exemplar GoogLeNet
//! inception-5b conv (7x7, Cin 832, Cout 384, 1x1).

use veltair_compiler::{extract_dominant, search, select_versions, CompilerOptions};
use veltair_tensor::{FeatureMap, FusedUnit, GemmView, Layer};

use super::ExpContext;

/// Figure 9 data.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig09 {
    /// All sampled implementations as (parallelism, blocking KB).
    pub all_samples: Vec<(f64, f64)>,
    /// Samples surviving the QoS filter.
    pub qualified: Vec<(f64, f64)>,
    /// The Pareto frontier (dominant implementations).
    pub frontier: Vec<(f64, f64)>,
    /// The picked versions (up to 5), most-local first.
    pub picked: Vec<(f64, f64)>,
}

/// Runs the Figure 9 walk-through.
#[must_use]
pub fn run(ctx: &ExpContext) -> Fig09 {
    // The paper's exemplar: Hin=Win=7, Cin=832, Cout=384, K=1.
    let layer = Layer::conv2d(
        "5b_1x1",
        FeatureMap::nchw(1, 832, 7, 7),
        384,
        (1, 1),
        (1, 1),
        (0, 0),
    );
    let gemm = GemmView::of(&layer).expect("conv gemm view");
    let unit = FusedUnit::solo(layer);
    let opts = CompilerOptions {
        search_iterations: 512,
        ..CompilerOptions::fast()
    };
    let population = search(&unit, &gemm, &ctx.machine, &opts, 0xF1_909);

    // QoS share: GoogLeNet's budget weighted by this unit's share.
    let spec = veltair_models::googlenet();
    let units = spec.graph.fused_units();
    let tf: f64 = units.iter().map(veltair_tensor::FusedUnit::flops).sum();
    let tb: f64 = units
        .iter()
        .map(veltair_tensor::FusedUnit::total_bytes)
        .sum();
    let weight = 0.5 * (unit.flops() / tf) + 0.5 * (unit.total_bytes() / tb);
    let qos_share = spec.qos_s() * weight;

    let coords = |s: &veltair_compiler::Sample| (s.parallelism, s.locality_bytes / 1e3);
    let all_samples: Vec<_> = population.iter().map(coords).collect();
    let qualified_samples: Vec<_> = population
        .iter()
        .filter(|s| s.solo_latency_s <= qos_share)
        .cloned()
        .collect();
    let qualified: Vec<_> = qualified_samples.iter().map(coords).collect();
    let frontier: Vec<_> = extract_dominant(&qualified_samples)
        .iter()
        .map(coords)
        .collect();
    let picked: Vec<_> = select_versions(&population, qos_share, &ctx.machine, &opts)
        .iter()
        .map(|v| (v.parallelism, v.locality_bytes / 1e3))
        .collect();

    Fig09 {
        all_samples,
        qualified,
        frontier,
        picked,
    }
}

impl std::fmt::Display for Fig09 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Figure 9: version extraction on conv 7x7 C(832,384) K1")?;
        writeln!(
            f,
            "  step 1 collect:   {:>4} implementations",
            self.all_samples.len()
        )?;
        writeln!(
            f,
            "  step 2 QoS-filter:{:>4} qualified",
            self.qualified.len()
        )?;
        writeln!(f, "  step 3 Pareto:    {:>4} dominant", self.frontier.len())?;
        writeln!(f, "  picked versions (parallelism, blocking KB):")?;
        for (p, l) in &self.picked {
            writeln!(f, "    par {p:>9.0}  block {l:>9.1} KB")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extraction_steps_shrink_the_set() {
        let ctx = ExpContext::new();
        let fig = run(&ctx);
        assert!(fig.all_samples.len() >= fig.qualified.len());
        assert!(fig.qualified.len() >= fig.frontier.len());
        assert!(fig.frontier.len() >= fig.picked.len());
        assert!(!fig.picked.is_empty() && fig.picked.len() <= 5);
    }

    #[test]
    fn frontier_spans_the_tradeoff() {
        let ctx = ExpContext::new();
        let fig = run(&ctx);
        // Fig. 9a: the two ends of the frontier trade parallelism against
        // blocking size.
        let first = fig.frontier.first().unwrap();
        let last = fig.frontier.last().unwrap();
        assert!(first.1 >= last.1, "frontier should start most-local");
        assert!(first.0 <= last.0, "frontier should end most-parallel");
    }
}
