//! The experiment harness: one entry point per figure and table of the
//! paper, each returning typed rows that benches print and tests check.
//!
//! All experiments share an [`ExpContext`] that lazily compiles and caches
//! models, scales query budgets through the `VELTAIR_QUERIES` environment
//! variable, and keeps every run deterministic by seeding the workload
//! generators.

use std::collections::BTreeMap;

use std::sync::Mutex;

use veltair_compiler::{compile_model, CompiledModel, CompilerOptions};
use veltair_sched::Policy;
use veltair_sim::MachineConfig;

use crate::engine::ServingEngine;

pub mod ablations;
pub mod fig01;
pub mod fig02;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod tables;

/// Shared state for experiment runs: machine, compiler options, and a
/// compile-once model cache.
#[derive(Debug)]
pub struct ExpContext {
    /// The simulated machine (the paper's 3990X by default).
    pub machine: MachineConfig,
    /// Compiler effort for model compilation.
    pub opts: CompilerOptions,
    cache: Mutex<BTreeMap<String, CompiledModel>>,
}

impl ExpContext {
    /// Standard context: the paper's machine, fast compile effort.
    #[must_use]
    pub fn new() -> Self {
        Self {
            machine: MachineConfig::threadripper_3990x(),
            opts: CompilerOptions::fast(),
            cache: Mutex::new(BTreeMap::new()),
        }
    }

    /// Context with explicit compiler options.
    #[must_use]
    pub fn with_options(opts: CompilerOptions) -> Self {
        Self {
            opts,
            ..Self::new()
        }
    }

    /// Compiles (or fetches from cache) a model of the zoo by name.
    ///
    /// # Panics
    ///
    /// Panics if the name is not in the model zoo.
    #[must_use]
    pub fn model(&self, name: &str) -> CompiledModel {
        let mut cache = self.cache.lock().expect("model cache lock poisoned");
        if let Some(m) = cache.get(name) {
            return m.clone();
        }
        let spec = veltair_models::by_name(name).unwrap_or_else(|| panic!("unknown model {name}"));
        let compiled = compile_model(&spec, &self.machine, &self.opts);
        cache.insert(name.to_string(), compiled.clone());
        compiled
    }

    /// Builds an engine with the given policy and registered models.
    #[must_use]
    pub fn engine(&self, policy: Policy, names: &[&str]) -> ServingEngine {
        let mut e = ServingEngine::new(self.machine.clone(), policy);
        for n in names {
            e.register(self.model(n));
        }
        e
    }

    /// Query budget per simulation run (`VELTAIR_QUERIES`, default 250).
    #[must_use]
    pub fn query_budget(&self) -> usize {
        std::env::var("VELTAIR_QUERIES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(250)
    }
}

impl Default for ExpContext {
    fn default() -> Self {
        Self::new()
    }
}

/// Formats a series of `(x, y)` points as one aligned figure row.
#[must_use]
pub fn series_row(label: &str, points: &[(f64, f64)]) -> String {
    let mut s = format!("{label:<24}");
    for (x, y) in points {
        s.push_str(&format!(" ({x:.2}, {y:.3})"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_caches_models() {
        let ctx = ExpContext::new();
        let a = ctx.model("mobilenet_v2");
        let b = ctx.model("mobilenet_v2");
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "unknown model")]
    fn unknown_model_panics() {
        let ctx = ExpContext::new();
        let _ = ctx.model("vgg16");
    }
}
