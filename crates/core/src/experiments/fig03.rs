//! Figure 3: scheduling-granularity study. QoS satisfaction rate (a) and
//! average query latency (b) against query arrival rate, for model-wise,
//! layer-wise, and fixed layer-block scheduling of ResNet-50.

use veltair_sched::{Policy, WorkloadSpec};

use super::ExpContext;

/// One (policy, qps) observation.
#[derive(Debug, Clone, PartialEq)]
pub struct GranularityPoint {
    /// Arrival rate (QPS).
    pub qps: f64,
    /// QoS satisfaction in `[0, 1]`.
    pub satisfaction: f64,
    /// Mean query latency (ms).
    pub avg_latency_ms: f64,
    /// Scheduling conflict rate (also consumed by Fig. 5a).
    pub conflict_rate: f64,
    /// Conflicts accumulated per query (Fig. 5a's robust companion
    /// metric: unlike the per-dispatch rate it is comparable across
    /// granularities with very different dispatch counts).
    pub conflicts_per_query: f64,
}

/// Figure 3 data (shared with Figure 5a).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig03 {
    /// (policy name, per-QPS observations).
    pub series: Vec<(String, Vec<GranularityPoint>)>,
}

/// The arrival rates swept (QPS), as in the paper.
pub const QPS_SWEEP: [f64; 6] = [50.0, 100.0, 150.0, 200.0, 250.0, 300.0];

/// Runs the granularity sweep over a ResNet-50 stream (30 000 queries in
/// the paper, `VELTAIR_QUERIES` here).
///
/// The paper's §3.2 study uses metronome-uniform arrivals; on our
/// deterministic substrate that degenerates into a binary cliff (zero
/// queueing below capacity, divergence above), so this sweep uses the
/// Poisson arrivals of the paper's main evaluation (MLPerf server mode),
/// which restores the gradual degradation the figure demonstrates.
#[must_use]
pub fn run(ctx: &ExpContext) -> Fig03 {
    let policies = [
        Policy::ModelFcfs,
        Policy::Planaria,
        Policy::FixedBlock(6),
        Policy::FixedBlock(11),
    ];
    let budget = ctx.query_budget();
    let mut series = Vec::new();
    for policy in policies {
        let engine = ctx.engine(policy, &["resnet50"]);
        let mut points = Vec::new();
        for qps in QPS_SWEEP {
            let workload = WorkloadSpec::single("resnet50", qps, budget);
            let report = engine.run(&workload, 0);
            points.push(GranularityPoint {
                qps,
                satisfaction: report.overall_satisfaction(),
                avg_latency_ms: report.overall_avg_latency_s() * 1e3,
                conflict_rate: report.conflict_rate(),
                conflicts_per_query: report.conflicts_per_query(),
            });
        }
        let label = match policy {
            Policy::ModelFcfs => "Model".to_string(),
            Policy::Planaria => "Layer".to_string(),
            other => other.name(),
        };
        series.push((label, points));
    }
    Fig03 { series }
}

impl std::fmt::Display for Fig03 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 3a: QoS satisfaction rate vs QPS (ResNet-50, uniform arrivals)"
        )?;
        for (name, pts) in &self.series {
            write!(f, "  {name:<10}")?;
            for p in pts {
                write!(f, " {:>3.0}qps:{:>5.1}%", p.qps, p.satisfaction * 100.0)?;
            }
            writeln!(f)?;
        }
        writeln!(f, "Figure 3b: average query latency (ms) vs QPS")?;
        for (name, pts) in &self.series {
            write!(f, "  {name:<10}")?;
            for p in pts {
                write!(f, " {:>3.0}qps:{:>7.2}", p.qps, p.avg_latency_ms)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn granularity_study_shapes() {
        let ctx = ExpContext::new();
        let fig = run(&ctx);
        assert_eq!(fig.series.len(), 4);
        for (name, pts) in &fig.series {
            assert_eq!(pts.len(), QPS_SWEEP.len());
            // Satisfaction must not improve as load rises (weak check).
            assert!(
                pts.first().unwrap().satisfaction >= pts.last().unwrap().satisfaction - 1e-9,
                "{name} satisfaction rose with load"
            );
            // Latency at the high end is at least the low-load latency.
            assert!(
                pts.last().unwrap().avg_latency_ms >= pts.first().unwrap().avg_latency_ms * 0.99,
                "{name} latency fell with load"
            );
        }
    }
}
