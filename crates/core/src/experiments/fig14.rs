//! Figure 14: (a) core-usage gap against the layer-wise optimum under two
//! system loads; (b) QPS improvement against the retained version budget;
//! (c) the distribution of version counts layers actually keep.

use veltair_compiler::{compile_model, CompilerOptions};
use veltair_sched::{Policy, WorkloadSpec};

use super::ExpContext;
use crate::engine::ServingEngine;
use crate::metrics::{max_qps_at_qos, QpsSearchConfig};

/// Figure 14 data.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig14 {
    /// (model class, load fraction, policy, core-usage gap vs layer-wise).
    pub usage_gap: Vec<(String, f64, String, f64)>,
    /// (max versions V, normalized max QPS vs V = 1) — panel (b).
    pub version_sweep: Vec<(usize, f64)>,
    /// Fraction of layers keeping exactly 1..=5 versions — panel (c).
    pub version_distribution: [f64; 5],
}

/// Runs the Figure 14 experiments.
#[must_use]
pub fn run(ctx: &ExpContext) -> Fig14 {
    let budget = ctx.query_budget().min(200);
    let cfg = QpsSearchConfig {
        queries: budget,
        ..QpsSearchConfig::standard()
    };

    // (a) Core-usage gap vs the layer-wise minimum at 25 % / 75 % load.
    let mut usage_gap = Vec::new();
    for (class, model) in [
        ("Light", "mobilenet_v2"),
        ("Medium", "resnet50"),
        ("Heavy", "bert_large"),
    ] {
        let workload = WorkloadSpec::single(model, 10.0, budget);
        let full = ctx.engine(Policy::VeltairFull, &[model]);
        let max = max_qps_at_qos(&full, &workload, &cfg).qps;
        for load in [0.25, 0.75] {
            let mut w = workload.scaled_to(max * load);
            w.total_queries = budget;
            let layer = ctx
                .engine(Policy::Planaria, &[model])
                .run(&w, 7)
                .core_seconds;
            for (label, policy) in [("Model", Policy::ModelFcfs), ("Block", Policy::VeltairAs)] {
                let used = ctx.engine(policy, &[model]).run(&w, 7).core_seconds;
                let gap = (used - layer) / layer;
                usage_gap.push((class.to_string(), load, label.to_string(), gap));
            }
        }
    }

    // (b) Version-budget sweep on a light mix (recompiling per V).
    let names = ["mobilenet_v2", "tiny_yolo_v2", "resnet50"];
    let specs: Vec<_> = names
        .iter()
        .map(|n| veltair_models::by_name(n).unwrap())
        .collect();
    let streams: Vec<(&str, f64)> = specs
        .iter()
        .map(|s| (s.graph.name.as_str(), 1.0 / s.qos_ms))
        .collect();
    let workload = WorkloadSpec::mix(&streams, budget);
    let mut version_sweep = Vec::new();
    let mut base = 0.0;
    for v in 1..=5usize {
        let opts = CompilerOptions {
            prune_tolerance: 1.0,
            ..ctx.opts.clone()
        }
        .with_max_versions(v);
        let mut engine = ServingEngine::new(ctx.machine.clone(), Policy::VeltairFull);
        for spec in &specs {
            engine.register(compile_model(spec, &ctx.machine, &opts));
        }
        let qps = max_qps_at_qos(&engine, &workload, &cfg).qps;
        if v == 1 {
            base = qps;
        }
        version_sweep.push((v, qps / base));
    }

    // (c) Version-count distribution over the whole zoo.
    let mut hist = [0usize; 5];
    let mut total = 0usize;
    for m in veltair_models::all_models() {
        let compiled = ctx.model(&m.graph.name);
        for l in &compiled.layers {
            hist[(l.versions.len() - 1).min(4)] += 1;
            total += 1;
        }
    }
    let mut version_distribution = [0.0f64; 5];
    for (d, h) in version_distribution.iter_mut().zip(hist) {
        *d = h as f64 / total as f64;
    }

    Fig14 {
        usage_gap,
        version_sweep,
        version_distribution,
    }
}

impl std::fmt::Display for Fig14 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Figure 14a: core-usage gap vs layer-wise minimum")?;
        for (class, load, policy, gap) in &self.usage_gap {
            writeln!(
                f,
                "  {class:<7} load {:>2.0}% {policy:<6} {:>6.1}%",
                load * 100.0,
                gap * 100.0
            )?;
        }
        writeln!(f, "Figure 14b: normalized max QPS vs version budget")?;
        for (v, q) in &self.version_sweep {
            writeln!(f, "  V={v}: {q:.3}")?;
        }
        writeln!(f, "Figure 14c: layers keeping k versions")?;
        for (k, d) in self.version_distribution.iter().enumerate() {
            writeln!(f, "  {} ver: {:>5.1}%", k + 1, d * 100.0)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_distribution_covers_all_layers() {
        let ctx = ExpContext::new();
        // Panel (c) only — cheap enough for a unit test.
        let mut hist = [0usize; 5];
        let mut total = 0usize;
        for name in ["mobilenet_v2", "tiny_yolo_v2"] {
            let compiled = ctx.model(name);
            for l in &compiled.layers {
                hist[(l.versions.len() - 1).min(4)] += 1;
                total += 1;
            }
        }
        assert!(total > 0);
        assert_eq!(hist.iter().sum::<usize>(), total);
        // Most layers need few versions (paper Fig. 14c: >80 % need <= 3).
        let few = hist[0] + hist[1] + hist[2];
        assert!(few * 2 > total, "{few}/{total} layers with <=3 versions");
    }
}
