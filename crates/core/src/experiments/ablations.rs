//! Ablation studies beyond the paper's figures, probing the design choices
//! DESIGN.md calls out: the dynamic threshold (vs fixed values), the
//! counter proxy (vs an oracle and vs interference-oblivious), the
//! extended prior-work comparison (AI-MT and Parties ports of Table 1),
//! and the §5.1 platform sensitivity (SMT / DVFS re-enabled).

use veltair_proxy::InterferenceProxy;
use veltair_sched::{simulate, Policy, SimConfig, WorkloadSpec};
use veltair_sim::MachineConfig;

use super::ExpContext;
use crate::dataset::train_proxy;

/// Ablation data.
#[derive(Debug, Clone, PartialEq)]
pub struct Ablations {
    /// (fixed block size k, satisfaction, conflict rate) vs the dynamic
    /// threshold row (k = 0 denotes dynamic).
    pub threshold_sweep: Vec<(usize, f64, f64)>,
    /// (monitor label, satisfaction, avg latency ms) for oracle / trained
    /// proxy / oblivious monitors under VELTAIR-FULL.
    pub monitor_ablation: Vec<(String, f64, f64)>,
    /// (policy, satisfaction, avg latency ms) across the extended
    /// baseline set on a mixed workload.
    pub extended_baselines: Vec<(String, f64, f64)>,
    /// (platform label, satisfaction, avg latency ms) for the §5.1
    /// sensitivity study: baseline vs SMT-on vs DVFS-on machines under
    /// VELTAIR-FULL.
    pub platform_sensitivity: Vec<(String, f64, f64)>,
}

/// Arrival rate used by both ablations (stresses ResNet-50 without
/// saturating the machine).
const QPS: f64 = 250.0;

/// Runs the ablation suite.
#[must_use]
pub fn run(ctx: &ExpContext) -> Ablations {
    let budget = ctx.query_budget();
    let workload = WorkloadSpec::single("resnet50", QPS, budget);
    let compiled = vec![ctx.model("resnet50")];
    let queries = workload.generate(0xAB1A);

    // --- Fixed block sizes vs the dynamic threshold --------------------
    let mut threshold_sweep = Vec::new();
    for k in [1usize, 3, 6, 11, 22, 56] {
        let cfg = SimConfig::new(ctx.machine.clone(), Policy::FixedBlock(k));
        let r = simulate(&compiled, &queries, &cfg);
        threshold_sweep.push((k, r.overall_satisfaction(), r.conflict_rate()));
    }
    let dynamic = simulate(
        &compiled,
        &queries,
        &SimConfig::new(ctx.machine.clone(), Policy::VeltairAs),
    );
    threshold_sweep.push((0, dynamic.overall_satisfaction(), dynamic.conflict_rate()));

    // --- Monitor ablation under adaptive compilation --------------------
    let trained = train_proxy(&compiled, &ctx.machine, 384, 0xAB1B);
    let monitors: Vec<(String, Option<InterferenceProxy>)> = vec![
        ("oracle".into(), None),
        ("trained-proxy".into(), Some(trained)),
        ("oblivious".into(), Some(InterferenceProxy::oblivious())),
    ];
    let mut monitor_ablation = Vec::new();
    for (label, proxy) in monitors {
        let mut cfg = SimConfig::new(ctx.machine.clone(), Policy::VeltairFull);
        if let Some(p) = proxy {
            cfg = cfg.with_proxy(p);
        }
        let r = simulate(&compiled, &queries, &cfg);
        monitor_ablation.push((
            label,
            r.overall_satisfaction(),
            r.overall_avg_latency_s() * 1e3,
        ));
    }

    // --- Extended prior-work comparison (Table 1 ports) -----------------
    let mix_models = vec![
        ctx.model("resnet50"),
        ctx.model("mobilenet_v2"),
        ctx.model("tiny_yolo_v2"),
    ];
    let mix = WorkloadSpec::mix(
        &[
            ("resnet50", 1.0 / 15.0),
            ("mobilenet_v2", 1.0 / 10.0),
            ("tiny_yolo_v2", 1.0 / 10.0),
        ],
        budget,
    )
    .generate(0xAB1C);
    let mut extended_baselines = Vec::new();
    for policy in Policy::extended_set() {
        let cfg = SimConfig::new(ctx.machine.clone(), policy);
        let r = simulate(&mix_models, &mix, &cfg);
        extended_baselines.push((
            policy.name(),
            r.overall_satisfaction(),
            r.overall_avg_latency_s() * 1e3,
        ));
    }

    // --- Platform sensitivity (§5.1: SMT and DVFS disabled on the paper's
    // testbed; re-enable each and measure the damage) ---------------------
    let platforms: Vec<(String, MachineConfig)> = vec![
        ("baseline".into(), ctx.machine.clone()),
        ("smt-on".into(), ctx.machine.clone().with_smt()),
        ("dvfs-on".into(), ctx.machine.clone().with_dvfs(0.2)),
    ];
    let mut platform_sensitivity = Vec::new();
    for (label, machine) in platforms {
        // Recompile against the altered machine so the lookup tables match.
        let spec = veltair_models::by_name("resnet50").expect("zoo model");
        let compiled = vec![veltair_compiler::compile_model(&spec, &machine, &ctx.opts)];
        let cfg = SimConfig::new(machine, Policy::VeltairFull);
        let r = simulate(&compiled, &queries, &cfg);
        platform_sensitivity.push((
            label,
            r.overall_satisfaction(),
            r.overall_avg_latency_s() * 1e3,
        ));
    }

    Ablations {
        threshold_sweep,
        monitor_ablation,
        extended_baselines,
        platform_sensitivity,
    }
}

impl std::fmt::Display for Ablations {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Ablation A: block size sweep at {QPS} QPS (k = 0 is the dynamic threshold)"
        )?;
        for (k, sat, conf) in &self.threshold_sweep {
            let label = if *k == 0 {
                "dynamic".to_string()
            } else {
                format!("fixed({k})")
            };
            writeln!(
                f,
                "  {label:<10} satisfaction {:>5.1}%  conflicts {:>5.1}%",
                sat * 100.0,
                conf * 100.0
            )?;
        }
        writeln!(f, "Ablation B: interference monitor under VELTAIR-FULL")?;
        for (label, sat, lat) in &self.monitor_ablation {
            writeln!(
                f,
                "  {label:<14} satisfaction {:>5.1}%  latency {:>7.2} ms",
                sat * 100.0,
                lat
            )?;
        }
        writeln!(
            f,
            "Ablation C: extended prior-work comparison (mixed workload)"
        )?;
        for (label, sat, lat) in &self.extended_baselines {
            writeln!(
                f,
                "  {label:<14} satisfaction {:>5.1}%  latency {:>7.2} ms",
                sat * 100.0,
                lat
            )?;
        }
        writeln!(
            f,
            "Ablation D: platform sensitivity (SMT / DVFS re-enabled, §5.1)"
        )?;
        for (label, sat, lat) in &self.platform_sensitivity {
            writeln!(
                f,
                "  {label:<14} satisfaction {:>5.1}%  latency {:>7.2} ms",
                sat * 100.0,
                lat
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trained_proxy_tracks_oracle_closely() {
        let ctx = ExpContext::new();
        let a = run(&ctx);
        let get = |label: &str| {
            a.monitor_ablation
                .iter()
                .find(|(l, ..)| l == label)
                .cloned()
                .unwrap()
        };
        let (_, oracle_sat, _) = get("oracle");
        let (_, proxy_sat, _) = get("trained-proxy");
        // The trained proxy should land near the oracle's satisfaction.
        assert!(
            (oracle_sat - proxy_sat).abs() < 0.15,
            "oracle {oracle_sat} vs proxy {proxy_sat}"
        );
    }

    #[test]
    fn full_tops_the_extended_baseline_comparison() {
        let ctx = ExpContext::new();
        let a = run(&ctx);
        let full = a
            .extended_baselines
            .iter()
            .find(|(l, ..)| l == "Veltair-FULL")
            .map(|(_, s, _)| *s)
            .unwrap();
        for (label, sat, _) in &a.extended_baselines {
            assert!(
                full >= sat - 0.05,
                "{label} ({sat:.2}) beat Veltair-FULL ({full:.2}) by more than noise"
            );
        }
        assert_eq!(a.extended_baselines.len(), 7);
    }

    #[test]
    fn platform_sensitivity_rows_are_complete() {
        let ctx = ExpContext::new();
        let a = run(&ctx);
        assert_eq!(a.platform_sensitivity.len(), 3);
        // Every platform still serves; satisfaction stays a probability.
        for (label, sat, lat) in &a.platform_sensitivity {
            assert!((0.0..=1.0).contains(sat), "{label} sat {sat}");
            assert!(*lat > 0.0, "{label} latency {lat}");
        }
    }

    #[test]
    fn dynamic_threshold_is_competitive_with_best_fixed() {
        let ctx = ExpContext::new();
        let a = run(&ctx);
        let dynamic = a.threshold_sweep.iter().find(|(k, ..)| *k == 0).unwrap().1;
        let best_fixed = a
            .threshold_sweep
            .iter()
            .filter(|(k, ..)| *k != 0)
            .map(|(_, s, _)| *s)
            .fold(0.0, f64::max);
        assert!(
            dynamic >= best_fixed - 0.1,
            "dynamic {dynamic} far below best fixed {best_fixed}"
        );
    }
}
