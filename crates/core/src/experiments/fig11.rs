//! Figure 11: the interference proxy. (a) PCA importance of the candidate
//! performance counters; (b) predicted vs measured pressure level of the
//! fitted linear model.

use veltair_proxy::{InterferenceProxy, Pca};

use super::ExpContext;
use crate::dataset::co_location_dataset;

/// Figure 11 data.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig11 {
    /// (counter name, variance share) — panel (a).
    pub importance: Vec<(String, f64)>,
    /// Sampled (measured, predicted) pairs — panel (b).
    pub scatter: Vec<(f64, f64)>,
    /// Held-out R² of the linear proxy.
    pub r2: f64,
    /// Held-out mean absolute error.
    pub mae: f64,
}

/// Runs the Figure 11 study across the full model zoo.
#[must_use]
pub fn run(ctx: &ExpContext) -> Fig11 {
    let models: Vec<_> = ["resnet50", "googlenet", "mobilenet_v2", "bert_large"]
        .iter()
        .map(|n| ctx.model(n))
        .collect();
    let (train_w, train_l) = co_location_dataset(&models, &ctx.machine, 512, 0x11C);
    let (test_w, test_l) = co_location_dataset(&models, &ctx.machine, 192, 0x11D);

    // (a) PCA on the 4-counter feature matrix, coefficient-of-variation
    // scaled so the question is "which counter *moves* with pressure".
    let raw: Vec<[f64; 4]> = train_w.iter().map(|w| w.feature_vector()).collect();
    let mut means = [0.0f64; 4];
    for r in &raw {
        for (m, v) in means.iter_mut().zip(r) {
            *m += v / raw.len() as f64;
        }
    }
    let scaled: Vec<Vec<f64>> = raw
        .iter()
        .map(|r| {
            r.iter()
                .zip(&means)
                .map(|(v, m)| if *m > 0.0 { v / m } else { 0.0 })
                .collect()
        })
        .collect();
    let pca = Pca::fit(&scaled);
    let names = ["L3 Miss Rate", "L3 Access", "IPC", "FP OP"];
    let importance = names
        .iter()
        .zip(pca.feature_importance())
        .map(|(n, i)| ((*n).to_string(), i))
        .collect();

    // (b) Fit on the training half, evaluate on held-out episodes.
    let proxy = InterferenceProxy::fit(&train_w, &train_l);
    let preds: Vec<f64> = test_w.iter().map(|w| proxy.predict(w)).collect();
    let mae = preds
        .iter()
        .zip(&test_l)
        .map(|(p, m)| (p - m).abs())
        .sum::<f64>()
        / preds.len() as f64;
    let mean = test_l.iter().sum::<f64>() / test_l.len() as f64;
    let ss_res: f64 = preds
        .iter()
        .zip(&test_l)
        .map(|(p, m)| (p - m) * (p - m))
        .sum();
    let ss_tot: f64 = test_l.iter().map(|m| (m - mean) * (m - mean)).sum();
    let r2 = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        1.0
    };
    let scatter: Vec<(f64, f64)> = test_l
        .iter()
        .copied()
        .zip(preds.iter().copied())
        .take(64)
        .collect();

    Fig11 {
        importance,
        scatter,
        r2,
        mae,
    }
}

impl std::fmt::Display for Fig11 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Figure 11a: per-counter variance share (CV-scaled PCA)")?;
        for (n, i) in &self.importance {
            writeln!(f, "  {n:<14} {:>6.2}%", i * 100.0)?;
        }
        writeln!(
            f,
            "Figure 11b: linear L3 proxy — held-out R2 {:.3}, MAE {:.3} ({} scatter points)",
            self.r2,
            self.mae,
            self.scatter.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l3_counters_dominate_and_proxy_fits() {
        let ctx = ExpContext::new();
        let fig = run(&ctx);
        let share = |name: &str| {
            fig.importance
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        // Fig. 11a: the L3 counters carry (most of) the variance.
        let l3 = share("L3 Miss Rate") + share("L3 Access");
        assert!(l3 > 0.5, "L3 share only {:.2}", l3);
        // Fig. 11b: the proxy tracks the measured level.
        assert!(fig.r2 > 0.5, "held-out r2 {}", fig.r2);
        assert!(fig.mae < 0.2, "held-out mae {}", fig.mae);
    }
}
