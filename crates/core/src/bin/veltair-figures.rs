//! Regenerates the paper's figures and tables as text.
//!
//! ```text
//! cargo run --release -p veltair-core --bin veltair-figures           # everything
//! cargo run --release -p veltair-core --bin veltair-figures fig06 fig12
//! VELTAIR_QUERIES=2000 cargo run --release -p veltair-core --bin veltair-figures fig03
//! ```
//!
//! Each figure prints the same rows/series the paper reports; see
//! `EXPERIMENTS.md` for the paper-vs-measured record.

use veltair_core::experiments::{
    ablations, fig01, fig02, fig03, fig04, fig05, fig06, fig07, fig09, fig10, fig11, fig12, fig13,
    fig14, tables, ExpContext,
};

/// All runnable experiment names in paper order.
const ALL: &[&str] = &[
    "tab01",
    "tab02",
    "fig01",
    "fig02",
    "fig03",
    "fig04",
    "fig05",
    "fig06",
    "fig07",
    "fig09",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "ablations",
];

fn run_one(ctx: &ExpContext, name: &str) {
    println!("==================================================================");
    match name {
        "tab01" => println!("{}", tables::table1()),
        "tab02" => println!("{}", tables::format_table2(&tables::table2(ctx))),
        "fig01" => println!("{}", fig01::run(ctx)),
        "fig02" => println!("{}", fig02::run(ctx)),
        "fig03" => println!("{}", fig03::run(ctx)),
        "fig04" => println!("{}", fig04::run(ctx)),
        "fig05" => println!("{}", fig05::run(ctx, None)),
        "fig06" => println!("{}", fig06::run(ctx)),
        "fig07" => println!("{}", fig07::run(ctx)),
        "fig09" => println!("{}", fig09::run(ctx)),
        "fig10" => println!("{}", fig10::run(ctx)),
        "fig11" => println!("{}", fig11::run(ctx)),
        "fig12" => println!("{}", fig12::run(ctx)),
        "fig13" => println!("{}", fig13::run(ctx, None)),
        "fig14" => println!("{}", fig14::run(ctx)),
        "ablations" => println!("{}", ablations::run(ctx)),
        other => {
            eprintln!("unknown experiment '{other}'; available: {}", ALL.join(" "));
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ctx = ExpContext::new();
    let selected: Vec<&str> = if args.is_empty() {
        ALL.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for name in selected {
        run_one(&ctx, name);
    }
}
