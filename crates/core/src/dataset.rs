//! Co-location episode generation for proxy training and the Fig. 11
//! counter study.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use veltair_compiler::CompiledModel;
use veltair_proxy::{CounterWindow, InterferenceProxy};
use veltair_sim::{execute, Interference, MachineConfig, PerfCounters, PressureDemand};

/// Generates `(counter window, measured pressure level)` pairs from random
/// co-location episodes.
///
/// Each episode samples 1-6 concurrent layer executions across the
/// registered models (random layer, version, and a core allocation near its
/// requirement), computes the pressure every unit exerts, and records
/// exactly what the runtime monitor would see: the rate-aggregated counters
/// of all running units, labelled with the pressure a newly arriving tenant
/// would experience (the oracle the proxy has to approximate).
///
/// # Panics
///
/// Panics if `models` is empty or has no layers.
#[must_use]
pub fn co_location_dataset(
    models: &[CompiledModel],
    machine: &MachineConfig,
    episodes: usize,
    seed: u64,
) -> (Vec<CounterWindow>, Vec<f64>) {
    assert!(
        !models.is_empty(),
        "dataset needs at least one compiled model"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut windows = Vec::with_capacity(episodes);
    let mut levels = Vec::with_capacity(episodes);

    for _ in 0..episodes {
        let k = rng.gen_range(1..=6usize);
        // Sample k running units.
        let mut picks = Vec::with_capacity(k);
        for _ in 0..k {
            let m = &models[rng.gen_range(0..models.len())];
            let l = &m.layers[rng.gen_range(0..m.layers.len())];
            let v = rng.gen_range(0..l.versions.len());
            let req = l.core_requirement(v, 0.0).max(1);
            let cores = rng
                .gen_range(1..=req.saturating_mul(2).min(machine.cores))
                .max(1);
            picks.push((l.versions[v].profile, cores));
        }
        // First pass: solo demands.
        let solo: Vec<PressureDemand> = picks
            .iter()
            .map(|(p, c)| execute(p, *c, Interference::NONE, machine).demand)
            .collect();
        // Second pass: each unit under the others' pressure; aggregate the
        // monitor's view.
        let mut counters = PerfCounters::default();
        let mut demands = Vec::with_capacity(k);
        for (i, (p, c)) in picks.iter().enumerate() {
            let others = solo
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, d)| d);
            let interference = Interference::from_corunners(others, machine);
            let exec = execute(p, *c, interference, machine);
            let scale = 1.0 / exec.latency_s.max(1e-12);
            counters.l3_accesses += exec.counters.l3_accesses * scale;
            counters.l3_misses += exec.counters.l3_misses * scale;
            counters.instructions += exec.counters.instructions * scale;
            counters.cycles += exec.counters.cycles * scale;
            counters.flops += exec.counters.flops * scale;
            demands.push(exec.demand);
        }
        let level = Interference::from_corunners(demands.iter(), machine).scalar();
        windows.push(CounterWindow::from_counters(&counters, 1.0));
        levels.push(level);
    }
    (windows, levels)
}

/// Trains the linear interference proxy on generated co-location episodes.
#[must_use]
pub fn train_proxy(
    models: &[CompiledModel],
    machine: &MachineConfig,
    episodes: usize,
    seed: u64,
) -> InterferenceProxy {
    let (windows, levels) = co_location_dataset(models, machine, episodes, seed);
    InterferenceProxy::fit(&windows, &levels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use veltair_compiler::{compile_model, CompilerOptions};

    fn models() -> (Vec<CompiledModel>, MachineConfig) {
        let machine = MachineConfig::threadripper_3990x();
        let m = vec![
            compile_model(
                &veltair_models::mobilenet_v2(),
                &machine,
                &CompilerOptions::fast(),
            ),
            compile_model(
                &veltair_models::tiny_yolo_v2(),
                &machine,
                &CompilerOptions::fast(),
            ),
        ];
        (m, machine)
    }

    #[test]
    fn dataset_has_varied_levels() {
        let (m, machine) = models();
        let (windows, levels) = co_location_dataset(&m, &machine, 256, 3);
        assert_eq!(windows.len(), 256);
        let lo = levels.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = levels.iter().copied().fold(0.0, f64::max);
        assert!(lo < 0.3, "min level {lo}");
        assert!(hi > 0.5, "max level {hi}");
        assert!(levels.iter().all(|l| (0.0..=1.0).contains(l)));
    }

    #[test]
    fn trained_proxy_tracks_pressure() {
        // Fig. 11b: the linear L3-counter proxy predicts the pressure well.
        let (m, machine) = models();
        let proxy = train_proxy(&m, &machine, 384, 5);
        assert!(proxy.r2 > 0.6, "training r2 = {}", proxy.r2);
        // Validate on held-out episodes.
        let (windows, levels) = co_location_dataset(&m, &machine, 128, 99);
        let mae: f64 = windows
            .iter()
            .zip(&levels)
            .map(|(w, l)| (proxy.predict(w) - l).abs())
            .sum::<f64>()
            / windows.len() as f64;
        assert!(mae < 0.15, "held-out MAE {mae}");
    }

    #[test]
    fn dataset_is_deterministic() {
        let (m, machine) = models();
        let a = co_location_dataset(&m, &machine, 32, 11);
        let b = co_location_dataset(&m, &machine, 32, 11);
        assert_eq!(a.0.len(), b.0.len());
        assert!(a.1.iter().zip(&b.1).all(|(x, y)| x == y));
    }
}
