//! The serving engine facade and the resumable serving session.
//!
//! Three layers, from offline to online:
//!
//! * [`EngineBuilder`] — validated construction: machine, policy, model
//!   registry, optional interference proxy, and per-model SLO overrides.
//! * [`ServingEngine`] — compile-once, serve-many: batch runs
//!   ([`ServingEngine::run`] / [`ServingEngine::try_run`]) and session
//!   creation.
//! * [`ServingSession`] — the open-loop path: queries are
//!   [`submit`](ServingSession::submit)ted while the clock runs,
//!   completions are [`poll`](ServingSession::poll)ed incrementally, the
//!   policy is hot-swapped mid-stream
//!   ([`set_policy`](ServingSession::set_policy)), and
//!   [`snapshot`](ServingSession::snapshot) reads per-model QoS/latency
//!   statistics without stopping the run.

use veltair_compiler::{compile_model, CompiledModel, CompilerOptions, SelectorKind};
use veltair_models::ModelSpec;
use veltair_proxy::InterferenceProxy;
use veltair_sched::runtime::{self, Driver};
use veltair_sched::{
    Policy, ProjectionConfig, QuerySpec, ServingReport, SimConfig, SimError, WorkloadSpec,
};
use veltair_sim::{MachineConfig, SimTime};
use veltair_telemetry::{Collector, TelemetrySnapshot, TraceConfig, TraceEventKind, TraceLog};

/// Why an engine could not be built or a serving call could not run.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The builder was finalized (or a session opened) with no registered
    /// models.
    NoModels,
    /// A cluster builder was finalized with no fleet nodes.
    NoNodes,
    /// A query, workload stream, or SLO override referenced a model that
    /// is not registered.
    UnknownModel {
        /// The model name that failed to resolve.
        model: String,
    },
    /// A batch run was asked to serve an empty query stream.
    EmptyWorkload,
    /// A submitted query's arrival time was NaN or infinite.
    NonFiniteArrival {
        /// The rejected arrival time, seconds of session clock.
        at_s: f64,
    },
    /// An SLO override was not a positive, finite latency target.
    InvalidSlo {
        /// The model the override targeted.
        model: String,
        /// The rejected QoS target, seconds.
        qos_s: f64,
    },
    /// A session was asked to run for a non-positive or non-finite
    /// duration.
    InvalidDuration {
        /// The rejected duration, seconds.
        dt_s: f64,
    },
    /// A fleet was handed per-node registries that do not match its node
    /// list (unreachable through [`ClusterBuilder::build`](crate::ClusterBuilder::build),
    /// which constructs matching registries).
    RegistryMismatch {
        /// Number of nodes configured.
        nodes: usize,
        /// Number of per-node registries supplied.
        registries: usize,
    },
    /// A fleet lifecycle operation named a node index outside the roster.
    UnknownNode {
        /// The rejected node index.
        node: usize,
    },
    /// A drain or kill would have left the fleet with zero routable
    /// nodes.
    FleetEmpty,
    /// An autoscaling policy parameter was out of range.
    InvalidScalePolicy {
        /// Which parameter was rejected.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::NoModels => {
                write!(f, "the engine has no registered models")
            }
            EngineError::NoNodes => {
                write!(f, "a cluster engine needs at least one node")
            }
            EngineError::UnknownModel { model } => {
                write!(f, "model {model} is not registered with the engine")
            }
            EngineError::EmptyWorkload => {
                write!(f, "cannot serve an empty query stream")
            }
            EngineError::NonFiniteArrival { at_s } => {
                write!(f, "arrival times must be finite, got {at_s}")
            }
            EngineError::InvalidSlo { model, qos_s } => {
                write!(
                    f,
                    "SLO overrides must be positive and finite: {model} got {qos_s} s"
                )
            }
            EngineError::InvalidDuration { dt_s } => {
                write!(f, "run durations must be positive and finite, got {dt_s}")
            }
            EngineError::RegistryMismatch { nodes, registries } => {
                write!(
                    f,
                    "per-node registries must match the node list: {nodes} nodes, \
                     {registries} registries"
                )
            }
            EngineError::UnknownNode { node } => {
                write!(f, "node {node} is not in the fleet roster")
            }
            EngineError::FleetEmpty => {
                write!(
                    f,
                    "the operation would leave the fleet with zero routable nodes"
                )
            }
            EngineError::InvalidScalePolicy { field, value } => {
                write!(f, "scale policy parameter {field} is out of range: {value}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<SimError> for EngineError {
    fn from(e: SimError) -> Self {
        match e {
            SimError::UnknownModel { model } => EngineError::UnknownModel { model },
            SimError::EmptyWorkload => EngineError::EmptyWorkload,
            SimError::NonFiniteArrival { arrival_s } => {
                EngineError::NonFiniteArrival { at_s: arrival_s }
            }
        }
    }
}

/// Validates and applies per-model SLO overrides to a registry, shared by
/// [`EngineBuilder::build`] and
/// [`ClusterBuilder::build`](crate::ClusterBuilder::build).
///
/// # Errors
///
/// Returns [`EngineError::InvalidSlo`] for a non-positive or non-finite
/// target and [`EngineError::UnknownModel`] when the named model is not
/// registered.
pub(crate) fn apply_slo_overrides(
    models: &mut [CompiledModel],
    overrides: Vec<(String, f64)>,
) -> Result<(), EngineError> {
    for (name, qos_s) in overrides {
        if !(qos_s.is_finite() && qos_s > 0.0) {
            return Err(EngineError::InvalidSlo { model: name, qos_s });
        }
        let model = models
            .iter_mut()
            .find(|m| m.name == name)
            .ok_or(EngineError::UnknownModel { model: name })?;
        model.qos_s = qos_s;
    }
    Ok(())
}

/// Validated, fluent construction of a [`ServingEngine`].
///
/// ```
/// use veltair_core::{Policy, ServingEngine};
/// use veltair_compiler::{compile_model, CompilerOptions};
/// use veltair_sim::MachineConfig;
///
/// let machine = MachineConfig::threadripper_3990x();
/// let engine = ServingEngine::builder()
///     .machine(machine.clone())
///     .policy(Policy::VeltairFull)
///     .model(compile_model(
///         &veltair_models::mobilenet_v2(),
///         &machine,
///         &CompilerOptions::fast(),
///     ))
///     .slo("mobilenet_v2", 0.05)
///     .build()
///     .expect("valid engine");
/// assert_eq!(engine.models().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    machine: MachineConfig,
    policy: Policy,
    models: Vec<CompiledModel>,
    specs: Vec<ModelSpec>,
    compiler: CompilerOptions,
    proxy: Option<InterferenceProxy>,
    selector: SelectorKind,
    projection: ProjectionConfig,
    slo_overrides: Vec<(String, f64)>,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        Self {
            machine: MachineConfig::threadripper_3990x(),
            policy: Policy::VeltairFull,
            models: Vec::new(),
            specs: Vec::new(),
            compiler: CompilerOptions::thorough(),
            proxy: None,
            selector: SelectorKind::default(),
            projection: ProjectionConfig::default(),
            slo_overrides: Vec::new(),
        }
    }
}

impl EngineBuilder {
    /// Sets the machine to serve on (default: the paper's 64-core
    /// Threadripper testbed).
    #[must_use]
    pub fn machine(mut self, machine: MachineConfig) -> Self {
        self.machine = machine;
        self
    }

    /// Sets the scheduling/compilation policy (default: VELTAIR-FULL).
    #[must_use]
    pub fn policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Registers a compiled model, replacing any previous model of the
    /// same name.
    #[must_use]
    pub fn model(mut self, model: CompiledModel) -> Self {
        self.models.retain(|m| m.name != model.name);
        self.specs.retain(|s| s.graph.name != model.name);
        self.models.push(model);
        self
    }

    /// Registers a model *spec* to be compiled at
    /// [`build`](EngineBuilder::build) time against the builder's machine
    /// with its [`compiler_options`](EngineBuilder::compiler_options) —
    /// the engine-level mirror of `ClusterBuilder::compile`. Replaces any
    /// previous model or spec of the same name. Compilation is deferred so
    /// the machine and options may be set in any order.
    #[must_use]
    pub fn compile(mut self, spec: ModelSpec) -> Self {
        self.models.retain(|m| m.name != spec.graph.name);
        self.specs.retain(|s| s.graph.name != spec.graph.name);
        self.specs.push(spec);
        self
    }

    /// Sets the compiler options used for specs registered via
    /// [`compile`](EngineBuilder::compile) (default:
    /// [`CompilerOptions::thorough`]) — the place to opt into
    /// `SearchMode::learned()` or adaptive fusion for a whole engine.
    #[must_use]
    pub fn compiler_options(mut self, options: CompilerOptions) -> Self {
        self.compiler = options;
        self
    }

    /// Installs a trained interference proxy (otherwise the engine
    /// monitors with the oracle pressure).
    #[must_use]
    pub fn proxy(mut self, proxy: InterferenceProxy) -> Self {
        self.proxy = Some(proxy);
        self
    }

    /// Sets the runtime version-selection policy consulted by
    /// adaptive-compilation policies (default: the calibrated hysteresis
    /// ladder; [`SelectorKind::PressureLadder`] replays pre-redesign runs
    /// bit for bit).
    #[must_use]
    pub fn selector(mut self, selector: SelectorKind) -> Self {
        self.selector = selector;
        self
    }

    /// Overrides the predictive pressure projection applied at every
    /// planning decision (default: the calibrated
    /// [`ProjectionConfig::default`]; `ProjectionConfig::disabled()`
    /// restores the purely instantaneous monitor).
    #[must_use]
    pub fn projection(mut self, projection: ProjectionConfig) -> Self {
        self.projection = projection;
        self
    }

    /// Overrides a registered model's end-to-end SLO (QoS latency target,
    /// seconds). Applied at [`build`](EngineBuilder::build) time to the
    /// accounting target and the temporal policies' priority normalizer;
    /// the per-layer compilation budget keeps the compile-time target
    /// (re-compile to change it).
    #[must_use]
    pub fn slo(mut self, model: &str, qos_s: f64) -> Self {
        self.slo_overrides.push((model.to_string(), qos_s));
        self
    }

    /// Finalizes the engine.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::NoModels`] if no model was registered,
    /// [`EngineError::UnknownModel`] if an SLO override names an
    /// unregistered model, and [`EngineError::InvalidSlo`] if an override
    /// is not a positive, finite latency.
    pub fn build(self) -> Result<ServingEngine, EngineError> {
        let Self {
            machine,
            policy,
            mut models,
            specs,
            compiler,
            proxy,
            selector,
            projection,
            slo_overrides,
        } = self;
        for spec in &specs {
            models.push(compile_model(spec, &machine, &compiler));
        }
        if models.is_empty() {
            return Err(EngineError::NoModels);
        }
        apply_slo_overrides(&mut models, slo_overrides)?;
        Ok(ServingEngine {
            machine,
            policy,
            models,
            proxy,
            selector,
            projection,
        })
    }
}

/// Compile-once, serve-many facade: holds the machine, the policy, the
/// compiled model registry, and (optionally) a trained interference proxy.
#[derive(Debug, Clone)]
pub struct ServingEngine {
    machine: MachineConfig,
    policy: Policy,
    models: Vec<CompiledModel>,
    proxy: Option<InterferenceProxy>,
    selector: SelectorKind,
    projection: ProjectionConfig,
}

impl ServingEngine {
    /// Creates an engine for a machine and scheduling policy.
    #[must_use]
    pub fn new(machine: MachineConfig, policy: Policy) -> Self {
        Self {
            machine,
            policy,
            models: Vec::new(),
            proxy: None,
            selector: SelectorKind::default(),
            projection: ProjectionConfig::default(),
        }
    }

    /// Starts validated, fluent construction: machine, policy, models,
    /// proxy, and SLO overrides, checked at
    /// [`build`](EngineBuilder::build).
    #[must_use]
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// Registers a compiled model, replacing any previous model of the
    /// same name.
    pub fn register(&mut self, model: CompiledModel) {
        self.models.retain(|m| m.name != model.name);
        self.models.push(model);
    }

    /// Installs a trained interference proxy (otherwise the engine
    /// monitors with the oracle pressure).
    pub fn set_proxy(&mut self, proxy: InterferenceProxy) {
        self.proxy = Some(proxy);
    }

    /// Changes the serving policy (models stay registered). Affects
    /// subsequent runs and sessions; live sessions hot-swap independently
    /// via [`ServingSession::set_policy`].
    pub fn set_policy(&mut self, policy: Policy) {
        self.policy = policy;
    }

    /// Changes the runtime version-selection policy. Affects subsequent
    /// runs and sessions.
    pub fn set_selector(&mut self, selector: SelectorKind) {
        self.selector = selector;
    }

    /// Changes the predictive pressure projection. Affects subsequent
    /// runs and sessions.
    pub fn set_projection(&mut self, projection: ProjectionConfig) {
        self.projection = projection;
    }

    /// The engine's predictive pressure projection.
    #[must_use]
    pub fn projection(&self) -> ProjectionConfig {
        self.projection
    }

    /// The engine's version-selection policy.
    #[must_use]
    pub fn selector(&self) -> SelectorKind {
        self.selector
    }

    /// The registered models.
    #[must_use]
    pub fn models(&self) -> &[CompiledModel] {
        &self.models
    }

    /// The machine this engine serves on.
    #[must_use]
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// The engine's current policy.
    #[must_use]
    pub fn policy(&self) -> Policy {
        self.policy
    }

    fn sim_config(&self) -> SimConfig {
        let mut cfg = SimConfig::new(self.machine.clone(), self.policy)
            .with_selector(self.selector)
            .with_projection(self.projection);
        if let Some(p) = &self.proxy {
            cfg = cfg.with_proxy(p.clone());
        }
        cfg
    }

    /// Serves a workload's query stream and returns the report.
    ///
    /// # Panics
    ///
    /// Panics if the workload references unregistered models; use
    /// [`ServingEngine::try_run`] to handle invalid input gracefully.
    #[must_use]
    pub fn run(&self, workload: &WorkloadSpec, seed: u64) -> ServingReport {
        self.try_run(workload, seed)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Serves a workload's query stream, surfacing invalid input as a
    /// typed [`EngineError`].
    ///
    /// The engine constructs the scheduler-core dispatcher for its policy
    /// explicitly (via [`runtime::for_policy`]) and hands it to the
    /// driver-backed batch loop, so embedders can follow the same path
    /// with a custom [`runtime::Dispatcher`] implementation.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::UnknownModel`] if the workload references
    /// unregistered models and [`EngineError::EmptyWorkload`] if it
    /// generates no queries.
    pub fn try_run(
        &self,
        workload: &WorkloadSpec,
        seed: u64,
    ) -> Result<ServingReport, EngineError> {
        let queries = workload.generate(seed);
        let dispatcher = runtime::for_policy(self.policy);
        let (report, _trace) =
            runtime::try_run(&self.models, &queries, &self.sim_config(), dispatcher)?;
        Ok(report)
    }

    /// Opens a resumable serving session: an open-loop simulation over
    /// this engine's registry that accepts arrivals, policy changes, and
    /// snapshot reads while the clock runs. The session borrows the
    /// engine's models; the engine itself stays immutable.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::NoModels`] if no model is registered.
    pub fn session(&self) -> Result<ServingSession<'_>, EngineError> {
        if self.models.is_empty() {
            return Err(EngineError::NoModels);
        }
        Ok(ServingSession {
            driver: Driver::open(&self.models, self.sim_config()),
            poll_cursor: 0,
            telemetry: None,
            trace_scratch: Vec::new(),
        })
    }
}

/// One finished query, as reported by [`ServingSession::poll`].
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// The session-assigned query id (returned by
    /// [`ServingSession::submit`]).
    pub query: usize,
    /// The model the query targeted.
    pub model: String,
    /// Arrival time, seconds of session clock.
    pub arrival_s: f64,
    /// Completion time, seconds of session clock.
    pub finish_s: f64,
    /// End-to-end latency, seconds.
    pub latency_s: f64,
    /// Whether the latency met the model's QoS target.
    pub qos_met: bool,
}

/// A point-in-time view of a live session, from
/// [`ServingSession::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReportSnapshot {
    /// Session clock, seconds.
    pub now_s: f64,
    /// Queries submitted so far (completed or not).
    pub submitted: usize,
    /// Queries completed so far.
    pub completed: usize,
    /// Scheduling units currently holding cores.
    pub in_flight: usize,
    /// Queries waiting in the admission queues.
    pub queued: usize,
    /// The accumulating serving report over the completed queries, with
    /// derived fields finalized.
    pub report: ServingReport,
}

/// A resumable serving run: streaming arrivals in, incremental results
/// out, with mid-run control. Created by [`ServingEngine::session`].
#[derive(Debug)]
pub struct ServingSession<'e> {
    driver: Driver<'e>,
    poll_cursor: usize,
    /// The flight recorder, when enabled: one node track (the machine)
    /// plus coordinator-side `Submitted` events. Driver-local query ids
    /// are the session's public query ids, so no remap table is needed.
    telemetry: Option<Collector>,
    trace_scratch: Vec<(f64, TraceEventKind)>,
}

impl ServingSession<'_> {
    /// Session clock, seconds.
    #[must_use]
    pub fn now_s(&self) -> f64 {
        self.driver.now().0
    }

    /// The session's active policy.
    #[must_use]
    pub fn policy(&self) -> Policy {
        self.driver.policy()
    }

    /// Whether every submitted query has completed.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.driver.is_idle()
    }

    /// Submits one query arriving at `at_s` seconds of session clock
    /// (clamped to *now* if already past). Returns the query id used in
    /// [`Completion::query`].
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::UnknownModel`] if `model` is not registered
    /// and [`EngineError::NonFiniteArrival`] if `at_s` is NaN or
    /// infinite.
    pub fn submit(&mut self, model: &str, at_s: f64) -> Result<usize, EngineError> {
        let id = self.driver.inject(&QuerySpec {
            model: model.to_string(),
            arrival: SimTime(at_s),
        })?;
        if let Some(tm) = self.telemetry.as_mut() {
            let st = &self.driver.state().queries[id];
            tm.coordinator(
                st.arrival.0,
                TraceEventKind::Submitted {
                    query: id as u64,
                    model: st.model as u32,
                },
            );
        }
        Ok(id)
    }

    /// Submits a whole workload's generated stream, with every arrival
    /// offset by the session's current clock — so a burst "starts now"
    /// regardless of how long the session has been running. Returns the
    /// ids in arrival order.
    ///
    /// Atomic: the stream's model names are validated up front, so an
    /// error means *nothing* was submitted — a caller may correct the
    /// workload and resubmit without double-injecting arrivals.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::UnknownModel`] if the workload references
    /// unregistered models.
    pub fn submit_stream(
        &mut self,
        workload: &WorkloadSpec,
        seed: u64,
    ) -> Result<Vec<usize>, EngineError> {
        let registry = &self.driver.state().models;
        if let Some((name, _)) = workload
            .streams
            .iter()
            .find(|(name, _)| !registry.iter().any(|m| &m.name == name))
        {
            return Err(EngineError::UnknownModel {
                model: name.clone(),
            });
        }
        let base = self.now_s();
        let mut ids = Vec::with_capacity(workload.total_queries);
        for q in workload.generate(seed) {
            ids.push(self.submit(&q.model, base + q.arrival.0)?);
        }
        Ok(ids)
    }

    /// Processes the next pending event; `false` when the session is
    /// idle.
    pub fn step(&mut self) -> bool {
        self.driver.step().is_some()
    }

    /// Runs the session up to `t_s` seconds of session clock.
    pub fn run_until(&mut self, t_s: f64) {
        self.driver.run_until(SimTime(t_s));
    }

    /// Runs the session for another `dt_s` seconds of session clock.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidDuration`] if `dt_s` is NaN,
    /// infinite, or not strictly positive (mirroring
    /// [`ClusterSession::run_for`](crate::ClusterSession::run_for)).
    pub fn run_for(&mut self, dt_s: f64) -> Result<(), EngineError> {
        if !dt_s.is_finite() || dt_s <= 0.0 {
            return Err(EngineError::InvalidDuration { dt_s });
        }
        let target = self.driver.now().after(dt_s);
        self.driver.run_until(target);
        Ok(())
    }

    /// Hot-swaps the scheduling policy at the current dispatch boundary:
    /// queued work is immediately re-offered to the new discipline, while
    /// in-flight units keep their allocations until their next natural
    /// boundary.
    pub fn set_policy(&mut self, policy: Policy) {
        self.driver.set_policy(policy);
    }

    /// Returns the queries that completed since the last `poll` (or since
    /// the session opened), in completion order. Non-blocking: an empty
    /// vector means nothing new finished, not that the session is done.
    pub fn poll(&mut self) -> Vec<Completion> {
        let state = self.driver.state();
        let new: Vec<Completion> = self.driver.completions()[self.poll_cursor..]
            .iter()
            .map(|&q| {
                let st = &state.queries[q];
                let model = &state.models[st.model];
                let finish = st
                    .finish
                    .expect("completion log only holds finished queries");
                let latency = finish.since(st.arrival);
                Completion {
                    query: q,
                    model: model.name.clone(),
                    arrival_s: st.arrival.0,
                    finish_s: finish.0,
                    latency_s: latency,
                    qos_met: latency <= model.qos_s,
                }
            })
            .collect();
        self.poll_cursor += new.len();
        new
    }

    /// Runs the session to completion and returns every not-yet-polled
    /// completion.
    pub fn drain(&mut self) -> Vec<Completion> {
        self.driver.run_to_completion();
        self.poll()
    }

    /// Turns on the flight recorder: `Submitted` events fire at
    /// submission and the driver's `Dispatched` / `Completed` /
    /// `Violated` lifecycle events are captured into a deterministic
    /// trace with a live metrics registry. Never perturbs the run.
    /// Call before submitting work: earlier queries cannot be
    /// retroactively attributed.
    pub fn enable_telemetry(&mut self, config: TraceConfig) {
        let models = self
            .driver
            .state()
            .models
            .iter()
            .map(|m| m.name.clone())
            .collect();
        let mut tm = Collector::new(config, models);
        let class = format!(
            "{}c/{}",
            self.driver.total_cores(),
            self.driver.policy().name()
        );
        tm.register_track("node-0", &class);
        self.driver.set_trace_sink(Box::new(tm.make_sink()));
        self.telemetry = Some(tm);
    }

    /// Whether the flight recorder is on.
    #[must_use]
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry.is_some()
    }

    /// Drains the driver's buffered events into the collector. Session
    /// query ids *are* the driver-local ids, so no remap is applied.
    fn pull_traces(&mut self) {
        let Some(tm) = self.telemetry.as_mut() else {
            return;
        };
        self.trace_scratch.clear();
        self.driver.drain_trace(&mut self.trace_scratch);
        let dropped = self.driver.trace_dropped();
        if !self.trace_scratch.is_empty() || dropped > 0 {
            tm.absorb_events(1, &mut self.trace_scratch, None, dropped);
        }
    }

    /// A point-in-time copy of the metrics registry — event counts,
    /// latency histograms, per-model violation cells — when telemetry is
    /// enabled. Pulls the driver's buffer first, so figures are current
    /// to the session clock.
    pub fn telemetry_snapshot(&mut self) -> Option<TelemetrySnapshot> {
        self.pull_traces();
        self.telemetry.as_ref().map(Collector::snapshot)
    }

    /// The merged lifecycle trace so far, in deterministic
    /// `(virtual time, track)` order — exportable via
    /// [`TraceLog::to_chrome_json`] and queryable via
    /// [`TraceLog::explain`]. `None` when telemetry is off.
    pub fn trace_log(&mut self) -> Option<TraceLog> {
        self.pull_traces();
        self.telemetry.as_ref().map(Collector::log)
    }

    /// Incremental per-model QoS/latency statistics over the queries
    /// completed so far, plus live queue depths. Does not perturb the
    /// run; snapshots may be taken at any cadence.
    #[must_use]
    pub fn snapshot(&self) -> ReportSnapshot {
        ReportSnapshot {
            now_s: self.now_s(),
            submitted: self.driver.state().queries.len(),
            completed: self.driver.completions().len(),
            in_flight: self.driver.in_flight(),
            queued: self.driver.queued(),
            report: self.driver.snapshot(),
        }
    }

    /// Finishes the session: drains all outstanding work and returns the
    /// final report.
    #[must_use]
    pub fn finish(mut self) -> ServingReport {
        self.driver.run_to_completion();
        self.driver.finish().0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veltair_compiler::{compile_model, CompilerOptions};

    fn engine() -> ServingEngine {
        let machine = MachineConfig::threadripper_3990x();
        let mut e = ServingEngine::new(machine.clone(), Policy::VeltairFull);
        e.register(compile_model(
            &veltair_models::tiny_yolo_v2(),
            &machine,
            &CompilerOptions::fast(),
        ));
        e
    }

    #[test]
    fn engine_round_trip() {
        let e = engine();
        let r = e.run(&WorkloadSpec::single("tiny_yolo_v2", 30.0, 40), 1);
        assert_eq!(r.total_queries(), 40);
        assert!(r.qos_satisfaction("tiny_yolo_v2") > 0.8);
    }

    #[test]
    fn builder_compiles_specs_with_its_options() {
        // The deferred-compile path equals compiling by hand with the same
        // options, regardless of the order machine/options/spec were set.
        let machine = MachineConfig::threadripper_3990x();
        let opts =
            CompilerOptions::fast().with_search_mode(veltair_compiler::SearchMode::learned());
        let e = ServingEngine::builder()
            .compile(veltair_models::tiny_yolo_v2())
            .compiler_options(opts.clone())
            .machine(machine.clone())
            .build()
            .expect("valid engine");
        let direct = compile_model(&veltair_models::tiny_yolo_v2(), &machine, &opts);
        assert_eq!(e.models().len(), 1);
        assert_eq!(e.models()[0], direct);
        assert!(e.models()[0].search_stats.pruned > 0);

        // compile() replaces a same-name model() registration and vice versa.
        let replaced = ServingEngine::builder()
            .model(direct.clone())
            .compile(veltair_models::tiny_yolo_v2())
            .compiler_options(opts)
            .build()
            .expect("valid engine");
        assert_eq!(replaced.models().len(), 1);
    }

    #[test]
    fn register_replaces_same_name() {
        let mut e = engine();
        let n = e.models().len();
        let machine = e.machine().clone();
        e.register(compile_model(
            &veltair_models::tiny_yolo_v2(),
            &machine,
            &CompilerOptions::fast(),
        ));
        assert_eq!(e.models().len(), n);
    }

    #[test]
    fn policy_swap_changes_behaviour() {
        let mut e = engine();
        let full = e.run(&WorkloadSpec::single("tiny_yolo_v2", 400.0, 60), 2);
        e.set_policy(Policy::Prema);
        let prema = e.run(&WorkloadSpec::single("tiny_yolo_v2", 400.0, 60), 2);
        assert_ne!(full, prema);
    }

    #[test]
    fn try_run_surfaces_typed_errors() {
        let e = engine();
        assert_eq!(
            e.try_run(&WorkloadSpec::single("resnet50", 10.0, 5), 1),
            Err(EngineError::UnknownModel {
                model: "resnet50".into()
            })
        );
        let ok = e
            .try_run(&WorkloadSpec::single("tiny_yolo_v2", 30.0, 10), 1)
            .expect("valid");
        assert_eq!(ok.total_queries(), 10);
    }

    #[test]
    fn builder_validates_models_and_slos() {
        assert_eq!(
            ServingEngine::builder().build().unwrap_err(),
            EngineError::NoModels
        );

        let machine = MachineConfig::threadripper_3990x();
        let compiled = compile_model(
            &veltair_models::tiny_yolo_v2(),
            &machine,
            &CompilerOptions::fast(),
        );
        assert_eq!(
            ServingEngine::builder()
                .model(compiled.clone())
                .slo("resnet50", 0.1)
                .build()
                .unwrap_err(),
            EngineError::UnknownModel {
                model: "resnet50".into()
            }
        );
        assert!(matches!(
            ServingEngine::builder()
                .model(compiled.clone())
                .slo("tiny_yolo_v2", -1.0)
                .build()
                .unwrap_err(),
            EngineError::InvalidSlo { .. }
        ));

        let engine = ServingEngine::builder()
            .machine(machine)
            .policy(Policy::Prema)
            .model(compiled)
            .slo("tiny_yolo_v2", 0.25)
            .build()
            .expect("valid");
        assert_eq!(engine.policy(), Policy::Prema);
        assert!((engine.models()[0].qos_s - 0.25).abs() < 1e-12);
    }

    #[test]
    fn session_streams_polls_and_snapshots() {
        let e = engine();
        let mut s = e.session().expect("has models");
        assert!(s.poll().is_empty());
        for i in 0..20 {
            s.submit("tiny_yolo_v2", f64::from(i) * 0.01)
                .expect("registered");
        }
        assert!(matches!(
            s.submit("bert_large", 0.0),
            Err(EngineError::UnknownModel { .. })
        ));

        s.run_until(0.1);
        let snap = s.snapshot();
        assert_eq!(snap.submitted, 20);
        assert!(snap.completed <= 20);
        assert!((snap.now_s - 0.1).abs() < 1e-12);
        let early = s.poll();
        assert_eq!(early.len(), snap.completed);

        let rest = s.drain();
        assert_eq!(early.len() + rest.len(), 20);
        assert!(s.is_idle());
        let report = s.finish();
        assert_eq!(report.total_queries(), 20);
        // The poll stream and the report agree on QoS accounting.
        let satisfied = early
            .iter()
            .chain(rest.iter())
            .filter(|c| c.qos_met)
            .count();
        assert_eq!(satisfied, report.per_model["tiny_yolo_v2"].satisfied);
    }

    #[test]
    fn session_run_for_rejects_invalid_durations() {
        let e = engine();
        let mut s = e.session().expect("has models");
        s.submit("tiny_yolo_v2", 0.0).expect("registered");
        for bad in [0.0, -0.5, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(
                matches!(s.run_for(bad), Err(EngineError::InvalidDuration { .. })),
                "duration {bad} was accepted"
            );
        }
        assert!(
            (s.now_s() - 0.0).abs() < 1e-12,
            "rejected run moved the clock"
        );
        s.run_for(0.2).expect("positive finite duration");
        assert!((s.now_s() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn non_finite_arrivals_are_rejected_not_panicking() {
        let e = engine();
        let mut s = e.session().expect("has models");
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(
                matches!(
                    s.submit("tiny_yolo_v2", bad),
                    Err(EngineError::NonFiniteArrival { .. })
                ),
                "arrival {bad} was not rejected"
            );
        }
        assert_eq!(s.snapshot().submitted, 0);
        s.submit("tiny_yolo_v2", 0.0).expect("finite arrival");
        assert_eq!(s.finish().total_queries(), 1);
    }

    #[test]
    fn submit_stream_is_atomic_on_unknown_models() {
        let e = engine();
        let mut s = e.session().expect("has models");
        let bad = WorkloadSpec::mix(&[("tiny_yolo_v2", 50.0), ("resnet50", 50.0)], 20);
        assert_eq!(
            s.submit_stream(&bad, 1),
            Err(EngineError::UnknownModel {
                model: "resnet50".into()
            })
        );
        // Nothing leaked in: a corrected resubmission starts clean.
        assert_eq!(s.snapshot().submitted, 0);
        s.submit_stream(&WorkloadSpec::single("tiny_yolo_v2", 50.0, 20), 1)
            .expect("valid");
        assert_eq!(s.finish().total_queries(), 20);
    }

    #[test]
    fn session_batch_equivalence() {
        // A session fed a workload's exact arrival times reproduces the
        // batch run bit for bit.
        let e = engine();
        let w = WorkloadSpec::single("tiny_yolo_v2", 120.0, 30);
        let batch = e.run(&w, 5);
        let mut s = e.session().expect("has models");
        s.submit_stream(&w, 5).expect("valid stream");
        assert_eq!(s.finish(), batch);
    }

    #[test]
    fn session_policy_hot_swap_mid_run() {
        let e = engine();
        let mut s = e.session().expect("has models");
        s.submit_stream(&WorkloadSpec::single("tiny_yolo_v2", 500.0, 40), 8)
            .expect("valid");
        s.run_until(0.05);
        s.set_policy(Policy::Prema);
        assert_eq!(s.policy(), Policy::Prema);
        s.submit_stream(&WorkloadSpec::single("tiny_yolo_v2", 500.0, 20), 9)
            .expect("valid");
        let report = s.finish();
        assert_eq!(report.total_queries(), 60);
        let sat = report.overall_satisfaction();
        assert!((0.0..=1.0).contains(&sat));
    }

    #[test]
    fn empty_engine_cannot_open_sessions() {
        let e = ServingEngine::new(MachineConfig::threadripper_3990x(), Policy::VeltairFull);
        assert!(matches!(e.session(), Err(EngineError::NoModels)));
    }
}
