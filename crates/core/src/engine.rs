//! The serving engine facade.

use veltair_compiler::CompiledModel;
use veltair_proxy::InterferenceProxy;
use veltair_sched::runtime;
use veltair_sched::{simulate_with_dispatcher, Policy, ServingReport, SimConfig, WorkloadSpec};
use veltair_sim::MachineConfig;

/// Compile-once, serve-many facade: holds the machine, the policy, the
/// compiled model registry, and (optionally) a trained interference proxy.
#[derive(Debug, Clone)]
pub struct ServingEngine {
    machine: MachineConfig,
    policy: Policy,
    models: Vec<CompiledModel>,
    proxy: Option<InterferenceProxy>,
}

impl ServingEngine {
    /// Creates an engine for a machine and scheduling policy.
    #[must_use]
    pub fn new(machine: MachineConfig, policy: Policy) -> Self {
        Self {
            machine,
            policy,
            models: Vec::new(),
            proxy: None,
        }
    }

    /// Registers a compiled model, replacing any previous model of the
    /// same name.
    pub fn register(&mut self, model: CompiledModel) {
        self.models.retain(|m| m.name != model.name);
        self.models.push(model);
    }

    /// Installs a trained interference proxy (otherwise the engine
    /// monitors with the oracle pressure).
    pub fn set_proxy(&mut self, proxy: InterferenceProxy) {
        self.proxy = Some(proxy);
    }

    /// Changes the serving policy (models stay registered).
    pub fn set_policy(&mut self, policy: Policy) {
        self.policy = policy;
    }

    /// The registered models.
    #[must_use]
    pub fn models(&self) -> &[CompiledModel] {
        &self.models
    }

    /// The machine this engine serves on.
    #[must_use]
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// Serves a workload's query stream and returns the report.
    ///
    /// The engine constructs the scheduler-core dispatcher for its policy
    /// explicitly (via [`runtime::for_policy`]) and hands it to the
    /// policy-agnostic event loop, so embedders can follow the same path
    /// with a custom [`runtime::Dispatcher`] implementation.
    ///
    /// # Panics
    ///
    /// Panics if the workload references unregistered models.
    #[must_use]
    pub fn run(&self, workload: &WorkloadSpec, seed: u64) -> ServingReport {
        let queries = workload.generate(seed);
        let mut cfg = SimConfig::new(self.machine.clone(), self.policy);
        if let Some(p) = &self.proxy {
            cfg = cfg.with_proxy(p.clone());
        }
        let dispatcher = runtime::for_policy(self.policy);
        simulate_with_dispatcher(&self.models, &queries, &cfg, dispatcher)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veltair_compiler::{compile_model, CompilerOptions};

    fn engine() -> ServingEngine {
        let machine = MachineConfig::threadripper_3990x();
        let mut e = ServingEngine::new(machine.clone(), Policy::VeltairFull);
        e.register(compile_model(
            &veltair_models::tiny_yolo_v2(),
            &machine,
            &CompilerOptions::fast(),
        ));
        e
    }

    #[test]
    fn engine_round_trip() {
        let e = engine();
        let r = e.run(&WorkloadSpec::single("tiny_yolo_v2", 30.0, 40), 1);
        assert_eq!(r.total_queries(), 40);
        assert!(r.qos_satisfaction("tiny_yolo_v2") > 0.8);
    }

    #[test]
    fn register_replaces_same_name() {
        let mut e = engine();
        let n = e.models().len();
        let machine = e.machine().clone();
        e.register(compile_model(
            &veltair_models::tiny_yolo_v2(),
            &machine,
            &CompilerOptions::fast(),
        ));
        assert_eq!(e.models().len(), n);
    }

    #[test]
    fn policy_swap_changes_behaviour() {
        let mut e = engine();
        let full = e.run(&WorkloadSpec::single("tiny_yolo_v2", 400.0, 60), 2);
        e.set_policy(Policy::Prema);
        let prema = e.run(&WorkloadSpec::single("tiny_yolo_v2", 400.0, 60), 2);
        assert_ne!(full, prema);
    }
}
