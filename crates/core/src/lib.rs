//! VELTAIR's serving engine, evaluation metrics, and experiment harness.
//!
//! This crate ties the whole reproduction together:
//!
//! * [`engine`] — [`ServingEngine`]: compile-once, serve-many facade over
//!   the compiler, proxy, and scheduler crates;
//! * [`dataset`] — co-location episode generation used to train the
//!   interference proxy exactly the way the deployed monitor observes the
//!   system;
//! * [`metrics`] — the paper's evaluation metrics (§5.1): maximum QPS at
//!   95 % QoS satisfaction (bisection search), average latency, and CPU
//!   usage efficiency;
//! * [`experiments`] — one function per figure/table of the paper,
//!   returning typed rows that the bench harness prints.
//!
//! # Example
//!
//! ```
//! use veltair_core::{Policy, ServingEngine, WorkloadSpec};
//! use veltair_compiler::{compile_model, CompilerOptions};
//! use veltair_sim::MachineConfig;
//!
//! let machine = MachineConfig::threadripper_3990x();
//! let mut engine = ServingEngine::new(machine.clone(), Policy::VeltairFull);
//! engine.register(compile_model(
//!     &veltair_models::mobilenet_v2(),
//!     &machine,
//!     &CompilerOptions::fast(),
//! ));
//! let report = engine.run(&WorkloadSpec::single("mobilenet_v2", 40.0, 60), 7);
//! assert_eq!(report.total_queries(), 60);
//! ```

pub mod dataset;
pub mod engine;
pub mod experiments;
pub mod metrics;

pub use dataset::{co_location_dataset, train_proxy};
pub use engine::ServingEngine;
pub use metrics::{max_qps_at_qos, QpsResult, QpsSearchConfig};
// Re-export the user-facing vocabulary so downstream users need one import.
pub use veltair_sched::{Policy, ServingReport, WorkloadError, WorkloadSpec};
