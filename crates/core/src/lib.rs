//! VELTAIR's serving engine, evaluation metrics, and experiment harness.
//!
//! This crate ties the whole reproduction together:
//!
//! * [`engine`] — the serving API: [`ServingEngine`] (compile-once,
//!   serve-many facade over the compiler, proxy, and scheduler crates),
//!   its validated [`EngineBuilder`], and the resumable
//!   [`ServingSession`] for online serving — streaming
//!   [`submit`](ServingSession::submit), incremental
//!   [`poll`](ServingSession::poll)/[`snapshot`](ServingSession::snapshot),
//!   and mid-run [`set_policy`](ServingSession::set_policy);
//! * [`cluster`] — the fleet surface: [`ClusterEngine`] composes N
//!   (possibly heterogeneous) nodes behind pluggable routing and
//!   admission control, with [`ClusterSession`] mirroring the
//!   builder → session → snapshot shape at fleet scale;
//! * [`dataset`] — co-location episode generation used to train the
//!   interference proxy exactly the way the deployed monitor observes the
//!   system;
//! * [`metrics`] — the paper's evaluation metrics (§5.1): maximum QPS at
//!   95 % QoS satisfaction (bisection search), average latency, and CPU
//!   usage efficiency;
//! * [`experiments`] — one function per figure/table of the paper,
//!   returning typed rows that the bench harness prints.
//!
//! # Example: builder → session → snapshot
//!
//! ```
//! use veltair_core::{Policy, ServingEngine, WorkloadSpec};
//! use veltair_compiler::{compile_model, CompilerOptions};
//! use veltair_sim::MachineConfig;
//!
//! let machine = MachineConfig::threadripper_3990x();
//! let engine = ServingEngine::builder()
//!     .machine(machine.clone())
//!     .policy(Policy::VeltairFull)
//!     .model(compile_model(
//!         &veltair_models::mobilenet_v2(),
//!         &machine,
//!         &CompilerOptions::fast(),
//!     ))
//!     .build()?;
//!
//! // Open-loop serving: submit while the clock runs, read stats mid-run.
//! let mut session = engine.session()?;
//! session.submit_stream(&WorkloadSpec::single("mobilenet_v2", 40.0, 60), 7)?;
//! session.run_until(0.5);
//! let snapshot = session.snapshot();
//! assert!(snapshot.completed <= 60);
//! let report = session.finish();
//! assert_eq!(report.total_queries(), 60);
//!
//! // The one-shot batch path is a wrapper over the same driver. (An
//! // *unpaused* session reproduces it bit for bit; the pause above may
//! // split floating-point accumulation intervals, so compare outcomes.)
//! let batch = engine.try_run(&WorkloadSpec::single("mobilenet_v2", 40.0, 60), 7)?;
//! assert_eq!(batch.total_queries(), report.total_queries());
//! # Ok::<(), veltair_core::EngineError>(())
//! ```

pub mod cluster;
pub mod dataset;
pub mod engine;
pub mod experiments;
pub mod metrics;
pub mod scenarios;

pub use cluster::{ClusterBuilder, ClusterEngine, ClusterSession};
pub use dataset::{co_location_dataset, train_proxy};
pub use engine::{
    Completion, EngineBuilder, EngineError, ReportSnapshot, ServingEngine, ServingSession,
};
pub use metrics::{max_qps_at_qos, QpsResult, QpsSearchConfig};
pub use scenarios::{all_scenarios, Scenario, SloExpectation};
// Re-export the user-facing vocabulary so downstream users need one import.
pub use veltair_cluster::{
    AdmissionKind, AutoscalerConfig, AutoscalerKind, ClusterError, CoordinatorStats, FailureKind,
    FailurePlan, FleetReport, FleetSnapshot, NodeLoad, NodeSpec, NodeState, RouterKind,
    RoutingMode, ScaleDecision, ScalePolicy, SloAdmissionConfig, StepMode,
};
pub use veltair_sched::{Policy, ServingReport, SimError, WorkloadError, WorkloadSpec};
