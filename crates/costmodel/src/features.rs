//! Deterministic feature extraction for schedule candidates.
//!
//! Every feature is a closed-form function of the schedule, the GEMM view,
//! and the machine — no lowering, no measurement. That is the point: the
//! cost model ranks candidates the search has *not* paid to lower, so its
//! inputs must be free.

use serde::{Deserialize, Serialize};
use veltair_sim::MachineConfig;
use veltair_tensor::{GemmView, Schedule};

/// Fixed-order feature vector of one schedule candidate.
///
/// The column order is part of the model contract: a [`crate::CostModel`]
/// trained on these vectors indexes coefficients positionally, so
/// [`ScheduleFeatures::NAMES`] doubles as the schema version.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleFeatures {
    /// Feature values, in [`ScheduleFeatures::NAMES`] order.
    pub values: Vec<f64>,
}

impl ScheduleFeatures {
    /// Column names, in the exact order of `values`.
    pub const NAMES: [&'static str; 13] = [
        "log2_tm",
        "log2_tn",
        "log2_tk",
        "log2_unroll",
        "log2_chunks",
        "log2_parallelism",
        "log2_locality_bytes",
        "locality_vs_l3",
        "footprint_vs_l3",
        "log2_tile_intensity",
        "log2_min_traffic",
        "log2_spill_traffic",
        "compute_efficiency",
    ];

    /// Extracts the feature vector of one candidate.
    ///
    /// Tile dims and derived products enter in log2 (the ladder is
    /// geometric); cache-pressure terms are ratios against the machine's
    /// L3; traffic terms reuse the lowering's resident/spilled accounting
    /// in closed form. Deterministic: equal inputs give bit-equal vectors.
    #[must_use]
    pub fn of(s: &Schedule, g: &GemmView, machine: &MachineConfig) -> Self {
        let lg = |v: f64| v.max(1.0).log2();
        let chunks = f64::from(s.parallel_chunks(g));
        let locality = s.locality_bytes(g);
        let tiles_m = g.m.div_ceil(s.tm) as f64;
        let tiles_n = g.n.div_ceil(s.tn) as f64;
        let tiles_k = g.k.div_ceil(s.tk) as f64;
        // Shared B panel of the live k-tile plus every worker's tile set.
        let footprint = (s.tk * g.n * g.elem_bytes) as f64 + f64::from(machine.cores) * locality;
        let tile_flops = 2.0 * (s.tm * s.tn * s.tk) as f64;
        let min_traffic = g.a_bytes() + g.b_bytes() + g.c_bytes();
        let spill_traffic = g.a_bytes() * tiles_n
            + g.b_bytes() * tiles_m
            + g.c_bytes() * 2.0f64.mul_add(tiles_k, -1.0);
        let values = vec![
            lg(s.tm as f64),
            lg(s.tn as f64),
            lg(s.tk as f64),
            lg(s.unroll as f64),
            lg(chunks),
            lg(s.parallelism(g)),
            lg(locality),
            locality / machine.l3_bytes,
            footprint / machine.l3_bytes,
            lg(tile_flops / locality.max(1.0)),
            lg(min_traffic),
            lg(spill_traffic.max(min_traffic)),
            s.compute_efficiency(g),
        ];
        debug_assert_eq!(values.len(), Self::NAMES.len());
        Self { values }
    }

    /// `(name, value)` pairs in schema order.
    pub fn named(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        Self::NAMES.iter().copied().zip(self.values.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veltair_tensor::{tile_ladder, FeatureMap, Layer};

    fn gemm() -> GemmView {
        let l = Layer::conv2d(
            "c",
            FeatureMap::nchw(1, 256, 14, 14),
            256,
            (3, 3),
            (1, 1),
            (1, 1),
        );
        GemmView::of(&l).unwrap()
    }

    #[test]
    fn features_are_deterministic_and_finite() {
        let g = gemm();
        let machine = MachineConfig::threadripper_3990x();
        for &tm in &tile_ladder(g.m) {
            for &u in &[1usize, 4, 16] {
                let s = Schedule::new(&g, tm, 64, 256, u);
                let a = ScheduleFeatures::of(&s, &g, &machine);
                let b = ScheduleFeatures::of(&s, &g, &machine);
                assert_eq!(a, b);
                assert_eq!(a.values.len(), ScheduleFeatures::NAMES.len());
                assert!(a.values.iter().all(|v| v.is_finite()));
            }
        }
    }

    #[test]
    fn named_columns_follow_schema_order() {
        let g = gemm();
        let machine = MachineConfig::threadripper_3990x();
        let s = Schedule::new(&g, 14, 64, 256, 8);
        let f = ScheduleFeatures::of(&s, &g, &machine);
        let names: Vec<&str> = f.named().map(|(n, _)| n).collect();
        assert_eq!(names, ScheduleFeatures::NAMES.to_vec());
        let (n0, v0) = f.named().next().unwrap();
        assert_eq!(n0, "log2_tm");
        assert!((v0 - (14.0f64).log2()).abs() < 1e-12);
    }

    #[test]
    fn features_separate_locality_from_parallelism() {
        let g = gemm();
        let machine = MachineConfig::threadripper_3990x();
        let fine = ScheduleFeatures::of(&Schedule::new(&g, 7, 16, 128, 4), &g, &machine);
        let coarse = ScheduleFeatures::of(&Schedule::new(&g, 98, 128, 2304, 4), &g, &machine);
        let col = |n: &str| {
            ScheduleFeatures::NAMES
                .iter()
                .position(|&x| x == n)
                .unwrap()
        };
        assert!(fine.values[col("log2_chunks")] > coarse.values[col("log2_chunks")]);
        assert!(
            fine.values[col("log2_locality_bytes")] < coarse.values[col("log2_locality_bytes")]
        );
        assert!(fine.values[col("log2_spill_traffic")] > coarse.values[col("log2_spill_traffic")]);
    }
}
