//! The online-trained schedule cost model.
//!
//! Standardize → PCA-project → ridge-regress, all from `veltair-proxy`'s
//! deterministic machinery. The model is trained *inside* one layer's
//! schedule search on the uniform-sampling phase's measured latencies, then
//! ranks the evolutionary phase's candidates so only the top fraction are
//! lowered and measured (Steiner et al.'s value-function idea, scaled to
//! this repo's analytic measurement).

use serde::{Deserialize, Serialize};
use veltair_proxy::{select_lambda, Pca, RidgeModel, Standardizer};

use crate::features::ScheduleFeatures;

/// Regularization ladder searched by cross-validation.
const LAMBDA_LADDER: [f64; 6] = [1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0];

/// Fallback regularization when the training set is too small to fold.
const SMALL_SET_LAMBDA: f64 = 1e-2;

/// Cumulative explained-variance ratio the PCA projection must keep.
const PCA_KEEP_RATIO: f64 = 0.999;

/// A fitted schedule cost model predicting solo latency from
/// [`ScheduleFeatures`].
///
/// The pipeline is standardization (zero-variance columns are inert), PCA
/// projection onto the components holding ≥ 99.9 % of the training
/// variance (the feature set is deliberately redundant; PCA collapses the
/// collinear columns ridge would otherwise split weight across), and ridge
/// regression on log-latency with `lambda` chosen by k-fold CV when the
/// training set affords folds. Everything downstream of the same training
/// set is bit-deterministic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    standardizer: Standardizer,
    pca: Pca,
    components: usize,
    ridge: RidgeModel,
    /// The regularization strength the CV picked (or the small-set default).
    pub lambda: f64,
    /// Pooled cross-validation R² of the chosen lambda (`0.0` when the
    /// training set was too small to fold).
    pub cv_r2: f64,
    /// Training-set size.
    pub train_rows: usize,
}

impl CostModel {
    /// Fits the model on measured `(features, solo latency)` pairs.
    ///
    /// The regression target is `ln(latency)`: latencies span orders of
    /// magnitude across the tile ladder, and ranking — not absolute error —
    /// is what the search consumes.
    ///
    /// # Panics
    ///
    /// Panics when the slices are empty, their lengths differ, or a
    /// latency is not positive and finite.
    #[must_use]
    pub fn fit(features: &[ScheduleFeatures], latencies_s: &[f64]) -> Self {
        assert!(
            !features.is_empty(),
            "cannot fit a cost model on no samples"
        );
        assert_eq!(
            features.len(),
            latencies_s.len(),
            "feature/latency length mismatch"
        );
        assert!(
            latencies_s.iter().all(|l| l.is_finite() && *l > 0.0),
            "latencies must be positive and finite"
        );

        let rows: Vec<Vec<f64>> = features.iter().map(|f| f.values.clone()).collect();
        let standardizer = Standardizer::fit(&rows);
        let standardized: Vec<Vec<f64>> = rows.iter().map(|r| standardizer.transform(r)).collect();
        let pca = Pca::fit(&standardized);
        let components = pca.components_for_ratio(PCA_KEEP_RATIO);
        let projected: Vec<Vec<f64>> = standardized
            .iter()
            .map(|r| pca.project(r, components))
            .collect();
        let targets: Vec<f64> = latencies_s.iter().map(|l| l.ln()).collect();

        let (lambda, cv_r2) = if projected.len() >= 8 {
            select_lambda(&projected, &targets, &LAMBDA_LADDER, 4)
        } else {
            (SMALL_SET_LAMBDA, 0.0)
        };
        let ridge = RidgeModel::fit(&projected, &targets, lambda);

        Self {
            standardizer,
            pca,
            components,
            ridge,
            lambda,
            cv_r2,
            train_rows: features.len(),
        }
    }

    /// Predicted solo latency, seconds. Always finite and positive: the
    /// ridge prediction of `ln(latency)` is clamped before exponentiation
    /// so even far-out-of-distribution candidates rank, not crash.
    #[must_use]
    pub fn predict_latency_s(&self, f: &ScheduleFeatures) -> f64 {
        let z = self.standardizer.transform(&f.values);
        let p = self.pca.project(&z, self.components);
        let log_lat = self.ridge.predict(&p);
        log_lat.clamp(-80.0, 80.0).exp()
    }

    /// Number of PCA components the projection keeps.
    #[must_use]
    pub fn components(&self) -> usize {
        self.components
    }
}

/// Spearman rank correlation between two equally long samples, with
/// average ranks for ties (so constant inputs correlate with nothing).
/// Returns 0 for degenerate inputs.
#[must_use]
pub fn rank_correlation(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "rank correlation needs equal lengths");
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let ranks = |v: &[f64]| -> Vec<f64> {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by(|&i, &j| v[i].total_cmp(&v[j]).then(i.cmp(&j)));
        let mut r = vec![0.0; v.len()];
        let mut start = 0;
        while start < idx.len() {
            let mut end = start;
            while end + 1 < idx.len() && v[idx[end + 1]] == v[idx[start]] {
                end += 1;
            }
            let avg = (start + end) as f64 / 2.0;
            for &i in &idx[start..=end] {
                r[i] = avg;
            }
            start = end + 1;
        }
        r
    };
    let ra = ranks(a);
    let rb = ranks(b);
    let mean = (n as f64 - 1.0) / 2.0;
    let mut num = 0.0;
    let mut da = 0.0;
    let mut db = 0.0;
    for i in 0..n {
        let xa = ra[i] - mean;
        let xb = rb[i] - mean;
        num += xa * xb;
        da += xa * xa;
        db += xb * xb;
    }
    if da <= 0.0 || db <= 0.0 {
        return 0.0;
    }
    num / (da * db).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use veltair_sim::MachineConfig;
    use veltair_tensor::{tile_ladder, FeatureMap, GemmView, Layer, Schedule};

    fn training_set() -> (Vec<ScheduleFeatures>, Vec<f64>) {
        let l = Layer::conv2d(
            "c",
            FeatureMap::nchw(1, 256, 14, 14),
            256,
            (3, 3),
            (1, 1),
            (1, 1),
        );
        let g = GemmView::of(&l).unwrap();
        let machine = MachineConfig::threadripper_3990x();
        let mut feats = Vec::new();
        let mut lats = Vec::new();
        for &tm in &tile_ladder(g.m) {
            for &tn in &[16usize, 64, 256] {
                for &u in &[1usize, 8] {
                    let s = Schedule::new(&g, tm, tn, 256, u);
                    feats.push(ScheduleFeatures::of(&s, &g, &machine));
                    // Synthetic but structured target: efficiency-scaled
                    // work plus a spill term, spanning decades.
                    let f = &feats[feats.len() - 1].values;
                    lats.push((f[11].exp2() / 1e11) / f[12].max(0.05) + 1e-6);
                }
            }
        }
        (feats, lats)
    }

    #[test]
    fn fit_is_deterministic() {
        let (feats, lats) = training_set();
        let a = CostModel::fit(&feats, &lats);
        let b = CostModel::fit(&feats, &lats);
        assert_eq!(a, b);
        for f in &feats {
            assert_eq!(
                a.predict_latency_s(f).to_bits(),
                b.predict_latency_s(f).to_bits()
            );
        }
    }

    #[test]
    fn predictions_rank_the_training_set() {
        let (feats, lats) = training_set();
        let m = CostModel::fit(&feats, &lats);
        let preds: Vec<f64> = feats.iter().map(|f| m.predict_latency_s(f)).collect();
        assert!(preds.iter().all(|p| p.is_finite() && *p > 0.0));
        let rho = rank_correlation(&preds, &lats);
        assert!(rho > 0.8, "in-sample rank correlation only {rho}");
    }

    #[test]
    fn degenerate_inputs_stay_finite() {
        // Single sample: no folds, constant columns everywhere.
        let (feats, lats) = training_set();
        let one = CostModel::fit(&feats[..1], &lats[..1]);
        assert!(one.predict_latency_s(&feats[5]).is_finite());
        assert_eq!(one.lambda, SMALL_SET_LAMBDA);
        // Identical rows: zero variance in every column.
        let same: Vec<ScheduleFeatures> = vec![feats[0].clone(); 10];
        let m = CostModel::fit(&same, &[1e-3; 10]);
        let p = m.predict_latency_s(&feats[7]);
        assert!(p.is_finite() && p > 0.0);
    }

    #[test]
    fn rank_correlation_bounds() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let up = [10.0, 20.0, 30.0, 40.0];
        let down = [4.0, 3.0, 2.0, 1.0];
        assert!((rank_correlation(&a, &up) - 1.0).abs() < 1e-12);
        assert!((rank_correlation(&a, &down) + 1.0).abs() < 1e-12);
        assert_eq!(rank_correlation(&a, &[7.0; 4]), 0.0);
        assert_eq!(rank_correlation(&[], &[]), 0.0);
    }
}
