//! Learned cost-model search support for the VELTAIR compiler.
//!
//! The paper's multi-version compiler fully lowers and "measures" every
//! schedule candidate on the analytic machine model. That is affordable in
//! a reproduction but is exactly what production auto-schedulers avoid:
//! Ansor-family searches train a *cost model* on the candidates they did
//! measure and let it rank the ones they did not (Steiner et al., *Value
//! Function Based Performance Optimization of Deep Learning Workloads*).
//!
//! This crate supplies the two halves the compiler's
//! `SearchMode::Learned` path composes:
//!
//! * [`ScheduleFeatures`] — deterministic, closed-form features of a
//!   schedule candidate (tile dims, unroll, parallelism, locality vs L3,
//!   footprint ratios, arithmetic intensity, traffic terms) in a fixed,
//!   named column order;
//! * [`CostModel`] — standardize → PCA-project → ridge-regress on
//!   log-latency, built entirely from `veltair-proxy`'s machinery
//!   (`Standardizer`, `Pca`, `RidgeModel`, `select_lambda` CV), trained
//!   online on the search's uniform-sampling phase and used to rank the
//!   evolutionary phase's candidates.
//!
//! [`rank_correlation`] (Spearman) is the shared quality yardstick used by
//! the property tests and the calibration example.
//!
//! # Example
//!
//! ```
//! use veltair_costmodel::{CostModel, ScheduleFeatures};
//! use veltair_sim::MachineConfig;
//! use veltair_tensor::{tile_ladder, FeatureMap, GemmView, Layer, Schedule};
//!
//! let l = Layer::conv2d("c", FeatureMap::nchw(1, 256, 14, 14), 256, (3, 3), (1, 1), (1, 1));
//! let g = GemmView::of(&l).unwrap();
//! let machine = MachineConfig::threadripper_3990x();
//! let (mut feats, mut lats) = (Vec::new(), Vec::new());
//! for &tm in &tile_ladder(g.m) {
//!     let s = Schedule::new(&g, tm, 64, 256, 8);
//!     feats.push(ScheduleFeatures::of(&s, &g, &machine));
//!     lats.push(1e-4 * (1.0 + tm as f64));
//! }
//! let model = CostModel::fit(&feats, &lats);
//! assert!(model.predict_latency_s(&feats[0]) > 0.0);
//! ```

pub mod features;
pub mod model;

pub use features::ScheduleFeatures;
pub use model::{rank_correlation, CostModel};
