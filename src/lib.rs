//! # VELTAIR
//!
//! A full reproduction of *"VELTAIR: Towards High-Performance Multi-tenant
//! Deep Learning Services via Adaptive Compilation and Scheduling"*
//! (ASPLOS 2022) as a Rust workspace.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`sim`] — the analytic 64-core CPU machine model with shared-L3 and
//!   memory-bandwidth contention;
//! * [`tensor`] — the operator IR (shapes, FLOP/byte accounting, loop
//!   nests, fusion);
//! * [`models`] — the seven MLPerf-style networks of the paper's Table 2;
//! * [`compiler`] — the Ansor-style auto-scheduler and the single-pass
//!   static multi-version compiler (Algorithm 1);
//! * [`costmodel`] — the learned schedule cost model (deterministic
//!   feature extraction + standardize/PCA/ridge pipeline) behind the
//!   compiler's `SearchMode::Learned` lowering pruner;
//! * [`proxy`] — the PCA-selected, linear performance-counter interference
//!   proxy;
//! * [`sched`] — layer-block formation (Algorithm 2), the scheduler-core
//!   runtime (Algorithm 3): a policy-agnostic event loop over pluggable
//!   `Dispatcher` families, plus the Planaria / PREMA / AI-MT / Parties
//!   baselines;
//! * [`cluster`] — the multi-machine fleet runtime: per-node serving
//!   drivers behind pluggable SLO-aware routing (round-robin,
//!   least-outstanding, power-of-two-choices, interference-aware) and
//!   admission control;
//! * [`telemetry`] — the deterministic flight recorder: query-lifecycle
//!   tracing, the metrics registry (latency histograms, the
//!   violation-frequency table), Chrome-trace export, and per-query SLO
//!   attribution;
//! * [`core`] — the serving engine, evaluation metrics, and the experiment
//!   harness that regenerates every figure and table of the paper.
//!
//! # Quickstart
//!
//! ```
//! use veltair::prelude::*;
//!
//! // Compile a model once, offline, and build a validated engine.
//! let machine = MachineConfig::threadripper_3990x();
//! let spec = veltair::models::mobilenet_v2();
//! let engine = ServingEngine::builder()
//!     .machine(machine.clone())
//!     .policy(Policy::VeltairFull)
//!     .model(compile_model(&spec, &machine, &CompilerOptions::fast()))
//!     .build()?;
//!
//! // Serve a Poisson stream through a resumable session: arrivals go in
//! // while the clock runs, per-model stats come out mid-run.
//! let mut session = engine.session()?;
//! session.submit_stream(&WorkloadSpec::single("mobilenet_v2", 50.0, 50), 42)?;
//! session.run_until(0.25);
//! let live = session.snapshot();
//! assert!(live.completed <= 50);
//! let report = session.finish();
//! assert_eq!(report.total_queries(), 50);
//! # Ok::<(), veltair::core::EngineError>(())
//! ```

pub use veltair_cluster as cluster;
pub use veltair_compiler as compiler;
pub use veltair_core as core;
pub use veltair_costmodel as costmodel;
pub use veltair_models as models;
pub use veltair_proxy as proxy;
pub use veltair_sched as sched;
pub use veltair_sim as sim;
pub use veltair_telemetry as telemetry;
pub use veltair_tensor as tensor;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use veltair_cluster::{
        AdmissionKind, Autoscaler, AutoscalerConfig, AutoscalerKind, ClusterError,
        CoordinatorStats, FailureEvent, FailureKind, FailurePlan, Fleet, FleetReport,
        FleetSnapshot, IndexSupport, LoadIndex, NodeLoad, NodeSpec, NodeState, Router, RouterKind,
        RoutingMode, ScaleDecision, ScalePolicy, SloAdmissionConfig, StepMode,
    };
    pub use veltair_compiler::{
        compile_model, CompiledModel, CompilerError, CompilerOptions, CompilerService,
        EwmaSmoother, HysteresisConfig, HysteresisLadder, ModelRegistry, PressureLadder,
        SearchMode, SearchStats, SelectionContext, SelectorKind, StaticLevel, VersionSelector,
    };
    pub use veltair_core::{
        all_scenarios, max_qps_at_qos, train_proxy, ClusterBuilder, ClusterEngine, ClusterSession,
        Completion, EngineBuilder, EngineError, Policy, QpsResult, QpsSearchConfig, ReportSnapshot,
        Scenario, ServingEngine, ServingReport, ServingSession, SimError, SloExpectation,
        WorkloadError, WorkloadSpec,
    };
    pub use veltair_costmodel::{rank_correlation, CostModel, ScheduleFeatures};
    pub use veltair_models::{all_models, by_name, ModelSpec, WorkloadClass};
    pub use veltair_sched::runtime::{Dispatcher, Driver};
    pub use veltair_sched::{PressureView, ProjectionConfig, QuerySpec, SimConfig};
    pub use veltair_sim::{Interference, MachineConfig, SimTime};
    pub use veltair_telemetry::{
        Collector, EventCounts, LatencyHistogram, NullSink, SloAttribution, TelemetrySnapshot,
        TraceConfig, TraceEvent, TraceEventKind, TraceLog, TraceSink, ViolationCell,
    };
}
